"""Cosmos-like replicated block store.

All job inputs and outputs in the measured cluster live in "a reliable
replicated block storage mechanism called Cosmos that is implemented on
the same commodity servers that do computation" (paper §3).  The store
shapes traffic three ways:

* **flow sizes** — transfers are bounded by block/chunk sizes ("flow sizes
  being determined largely by chunking considerations", §8), which is why
  the cluster has no super-large flows;
* **locality** — the scheduler places computation next to replicas, which
  produces the work-seeks-bandwidth pattern;
* **evacuations** — when a server repeatedly misbehaves, the automated
  management system re-replicates every block it holds before the machine
  is re-imaged (§4.2), an unexpected source of long congestion episodes.

Placement follows the GFS/HDFS convention the paper's infrastructure also
uses: first replica on the writer, second in the writer's rack, third in a
remote rack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.topology import ClusterTopology

__all__ = ["Block", "Dataset", "BlockStore"]


@dataclass(frozen=True)
class Block:
    """An immutable chunk of a dataset, replicated on several servers."""

    block_id: int
    dataset_id: int
    size: float
    replicas: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("block size must be positive")
        if len(self.replicas) == 0:
            raise ValueError("block must have at least one replica")
        if len(set(self.replicas)) != len(self.replicas):
            raise ValueError("block replicas must be distinct servers")


@dataclass
class Dataset:
    """A named collection of blocks."""

    dataset_id: int
    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def total_bytes(self) -> float:
        """Total logical size (one replica's worth)."""
        return sum(block.size for block in self.blocks)

    @property
    def num_blocks(self) -> int:
        """Number of blocks in the dataset."""
        return len(self.blocks)


class BlockStore:
    """Tracks block placement across cluster servers.

    The store is *logical*: it decides placement and records it, while the
    simulator is responsible for generating the replication flows that the
    placement implies.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        rng: np.random.Generator,
        replication_factor: int = 3,
    ) -> None:
        if replication_factor < 1:
            raise ValueError("replication factor must be >= 1")
        self.topology = topology
        self.replication_factor = min(replication_factor, topology.num_servers)
        self._rng = rng
        self._datasets: dict[int, Dataset] = {}
        self._blocks: dict[int, Block] = {}
        self._blocks_by_server: dict[int, set[int]] = {
            server: set() for server in range(topology.num_servers)
        }
        self._next_dataset_id = 0
        self._next_block_id = 0

    # ------------------------------------------------------------- placement

    def choose_replicas(self, writer: int | None = None) -> tuple[int, ...]:
        """Pick replica servers for a new block.

        ``writer`` anchors the first replica (local write); when ``None``
        (e.g. externally ingested data) a random server is picked.
        """
        topo = self.topology
        first = writer if writer is not None else int(self._rng.integers(topo.num_servers))
        if not 0 <= first < topo.num_servers:
            raise ValueError(f"writer {writer} is not an in-cluster server")
        replicas = [first]
        if self.replication_factor >= 2:
            # Second replica beside the writer (cheap, fast to write and
            # the copy most reads hit), third in a remote rack for
            # failure-domain diversity.  Keeping two of three replicas in
            # the writer's rack is what keeps a job's working set — and
            # therefore its traffic — concentrated (work-seeks-bandwidth).
            rack_peers = [
                s for s in topo.servers_in_rack(topo.rack_of(first)) if s != first
            ]
            if rack_peers:
                replicas.append(int(self._rng.choice(rack_peers)))
        if self.replication_factor >= 3 and topo.num_racks > 1:
            used_racks = {topo.rack_of(server) for server in replicas}
            other_racks = [r for r in range(topo.num_racks) if r not in used_racks]
            while len(replicas) < self.replication_factor and other_racks:
                rack = int(self._rng.choice(other_racks))
                other_racks.remove(rack)
                candidates = [s for s in topo.servers_in_rack(rack) if s not in replicas]
                if candidates:
                    replicas.append(int(self._rng.choice(candidates)))
        # Fill any shortfall (tiny clusters) from arbitrary distinct servers.
        while len(replicas) < self.replication_factor:
            candidate = int(self._rng.integers(topo.num_servers))
            if candidate not in replicas:
                replicas.append(candidate)
        return tuple(replicas)

    # ------------------------------------------------------------- datasets

    def create_dataset(
        self,
        name: str,
        total_bytes: float,
        block_size: float,
        writer: int | None = None,
        home_servers: list[int] | None = None,
        home_bias: float = 0.0,
    ) -> Dataset:
        """Create a dataset of ``total_bytes`` split into ``block_size`` chunks.

        Each block gets its own replica set.  Anchoring every block on the
        same ``writer`` models a single uploader; ``home_servers`` with a
        ``home_bias`` in (0, 1] anchors each block on a random home server
        with that probability (datasets written by earlier rack-local jobs
        — the concentration that work-seeks-bandwidth feeds on); otherwise
        blocks spread across the cluster.
        """
        if total_bytes <= 0:
            raise ValueError("dataset must contain at least one byte")
        if block_size <= 0:
            raise ValueError("block size must be positive")
        if not 0.0 <= home_bias <= 1.0:
            raise ValueError("home_bias must lie in [0, 1]")
        if home_bias > 0 and not home_servers:
            raise ValueError("home_bias requires home_servers")
        dataset = Dataset(dataset_id=self._next_dataset_id, name=name)
        self._next_dataset_id += 1
        remaining = float(total_bytes)
        while remaining > 0:
            size = min(block_size, remaining)
            remaining -= size
            block_writer = writer
            if block_writer is None and home_servers and self._rng.random() < home_bias:
                block_writer = int(self._rng.choice(home_servers))
            self.add_block(dataset, size, writer=block_writer)
        self._datasets[dataset.dataset_id] = dataset
        return dataset

    def add_block(self, dataset: Dataset, size: float, writer: int | None = None) -> Block:
        """Append one block to a dataset and record its placement."""
        block = Block(
            block_id=self._next_block_id,
            dataset_id=dataset.dataset_id,
            size=float(size),
            replicas=self.choose_replicas(writer),
        )
        self._next_block_id += 1
        dataset.blocks.append(block)
        self._blocks[block.block_id] = block
        for server in block.replicas:
            self._blocks_by_server[server].add(block.block_id)
        return block

    def dataset(self, dataset_id: int) -> Dataset:
        """Look up a dataset by id."""
        return self._datasets[dataset_id]

    def block(self, block_id: int) -> Block:
        """Look up a block by id."""
        return self._blocks[block_id]

    def blocks_on(self, server: int) -> list[Block]:
        """All blocks with a replica on ``server``."""
        return [self._blocks[block_id] for block_id in sorted(self._blocks_by_server[server])]

    def bytes_on(self, server: int) -> float:
        """Total replica bytes stored on ``server``."""
        return sum(block.size for block in self.blocks_on(server))

    # ------------------------------------------------------------ evacuation

    def evacuate(self, server: int) -> list[tuple[Block, int, int]]:
        """Evacuate every block replica off ``server``.

        For each affected block a new replica server is chosen (preserving
        rack diversity where possible) and the placement records are
        updated.  Returns ``(block, source_server, new_server)`` transfer
        descriptions, sourced from the evacuating server itself: the
        machine is still up (it is being drained *before* re-imaging,
        §4.2), and streaming everything off one server is exactly why
        evacuations show up as long-lived congestion on its uplink.
        """
        transfers: list[tuple[Block, int, int]] = []
        topo = self.topology
        for block_id in sorted(self._blocks_by_server[server]):
            block = self._blocks[block_id]
            survivors = tuple(s for s in block.replicas if s != server)
            exclude = set(block.replicas)
            used_racks = {topo.rack_of(s) for s in survivors}
            preferred = [
                s
                for s in range(topo.num_servers)
                if s not in exclude and topo.rack_of(s) not in used_racks
            ]
            fallback = [s for s in range(topo.num_servers) if s not in exclude]
            pool = preferred or fallback
            if not pool:
                continue  # degenerate cluster: nowhere to go
            new_server = int(self._rng.choice(pool))
            source = server
            replacement = Block(
                block_id=block.block_id,
                dataset_id=block.dataset_id,
                size=block.size,
                replicas=survivors + (new_server,),
            )
            self._blocks[block_id] = replacement
            dataset = self._datasets.get(block.dataset_id)
            if dataset is not None:
                dataset.blocks[:] = [
                    replacement if b.block_id == block_id else b for b in dataset.blocks
                ]
            self._blocks_by_server[new_server].add(block_id)
            transfers.append((replacement, source, new_server))
        self._blocks_by_server[server].clear()
        return transfers
