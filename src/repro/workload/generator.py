"""Workload generation: job arrivals, external transfers, evacuations.

The instrumented cluster runs "diverse workloads created in the course of
solving business and engineering problems" (paper §1): a stream of jobs
from quick interactive experiments to long production index builds, plus
data ingestion from outside the cluster, result egress, and occasional
automated server evacuations.  This module turns a
:class:`WorkloadConfig` into a deterministic schedule of those events.

Load varies over "days" through ``day_load_factors`` — the Fig 8
experiment replays eight days where weekdays are busy and the weekend is
light, matching the paper's observation that the low-uplift days
"correspond to a lightly loaded weekend".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.units import GB, MB
from .scope import STANDARD_TEMPLATES, JobSpec, JobTemplate

__all__ = ["WorkloadConfig", "EvacuationEvent", "IngestionEvent", "WorkloadSchedule",
           "generate_schedule"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs controlling workload generation and execution.

    Rates are *per simulated second*; the defaults target a few hundred
    servers for tens of minutes.  ``template_weights`` skews the mix
    towards short interactive jobs, as in the paper's cluster.
    """

    job_arrival_rate: float = 0.08
    template_weights: dict[str, float] = field(
        default_factory=lambda: {"interactive": 0.62, "report": 0.30, "production": 0.08}
    )
    templates: dict[str, JobTemplate] = field(
        default_factory=lambda: dict(STANDARD_TEMPLATES)
    )
    #: Block size for datasets and outputs (the "chunking" that bounds
    #: flow sizes, paper §8).
    block_size: float = 256 * MB
    target_bucket_bytes: float = 512 * MB
    max_vertices_per_phase: int = 48
    max_extract_vertices: int = 384
    #: Probability that an input block is anchored inside the job's home
    #: scope (rack/VLAN per template) rather than spread cluster-wide.
    input_home_bias: float = 0.8
    #: Compute-slot pool per server.
    slots_per_server: int = 4
    locality_bias: float = 1.0
    #: Delay-scheduling patience: how long a data-anchored vertex waits
    #: for a slot on a server holding its data before running anywhere.
    locality_wait: float = 8.0
    #: Vertex compute throughput (bytes/s per slot) and its lognormal noise.
    compute_throughput: float = 250 * MB
    compute_noise_sigma: float = 0.35
    #: Local disk streaming rate for co-located reads.
    disk_read_rate: float = 800 * MB
    #: Simultaneously open connections per vertex (paper §4.4: applications
    #: "limit their simultaneously open connections to a small number").
    max_connections: int = 4
    #: Stop-and-go scheduling quantum for starting queued fetches (§4.3's
    #: ~15 ms inter-arrival modes).
    connection_quantum: float = 0.015
    connection_jitter: float = 0.001
    #: Control-plane chatter (job manager RPCs) per vertex, bytes.
    control_message_bytes: float = 24e3
    #: Partition skew: per-(producer, bucket) shuffle volumes are scaled
    #: by normalised lognormal(0, sigma) weights.  Real map-reduce
    #: partitions are notoriously uneven (hot keys), which is also what
    #: keeps shuffle TMs from collapsing to gravity's rank-one form.
    partition_skew_sigma: float = 0.7
    #: Read failure model: base hazard per remote fetch, multiplier when
    #: the fetch overlapped a high-utilisation link, and the rate of
    #: non-network failures (bad disks, unresponsive machines, §4.2).
    read_failure_base: float = 4e-4
    read_failure_congested_multiplier: float = 10.0
    non_network_failure_prob: float = 6e-3
    #: Replication factor for block-store writes.
    replication_factor: int = 3
    #: External data ingestion events per second, their size range, and
    #: the probability that a finished job's output is pulled out.
    ingestion_rate: float = 0.004
    ingestion_bytes_range: tuple[float, float] = (1 * GB, 8 * GB)
    egress_probability: float = 0.25
    #: Server evacuations per second (rare, long-lived congestion, §4.2),
    #: and how many co-located (same-rack) servers one event drains —
    #: failures correlate within a rack (shared ToR and power).
    evacuation_rate: float = 0.002
    evacuation_servers: int = 3
    #: Pre-existing block-store bytes per server at campaign start (the
    #: cluster's standing datasets).  This is what an evacuation drains,
    #: so it controls how long evacuation congestion episodes last.
    initial_data_per_server: float = 8 * GB
    #: Relative load per simulated day (cycled); used by multi-day runs.
    day_load_factors: tuple[float, ...] = (1.0,)
    #: Length of one simulated "day" in seconds (scaled; see DESIGN.md).
    day_length: float = 300.0

    def __post_init__(self) -> None:
        if self.job_arrival_rate < 0:
            raise ValueError("job_arrival_rate must be non-negative")
        if not self.template_weights:
            raise ValueError("template_weights must not be empty")
        unknown = set(self.template_weights) - set(self.templates)
        if unknown:
            raise ValueError(f"weights reference unknown templates: {sorted(unknown)}")
        if any(w < 0 for w in self.template_weights.values()):
            raise ValueError("template weights must be non-negative")
        if sum(self.template_weights.values()) <= 0:
            raise ValueError("template weights must sum to a positive value")
        if self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if self.connection_quantum <= 0:
            raise ValueError("connection_quantum must be positive")
        if not self.day_load_factors:
            raise ValueError("day_load_factors must not be empty")
        if self.day_length <= 0:
            raise ValueError("day_length must be positive")


@dataclass(frozen=True)
class EvacuationEvent:
    """A scheduled server evacuation (server chosen at execution time)."""

    time: float


@dataclass(frozen=True)
class IngestionEvent:
    """An external host uploading a new dataset into the cluster."""

    time: float
    total_bytes: float
    external_host: int


@dataclass
class WorkloadSchedule:
    """Everything the executor will replay, in time order."""

    jobs: list[JobSpec]
    ingestions: list[IngestionEvent]
    evacuations: list[EvacuationEvent]
    duration: float

    @property
    def num_events(self) -> int:
        """Total scheduled top-level events."""
        return len(self.jobs) + len(self.ingestions) + len(self.evacuations)


def _load_factor_at(config: WorkloadConfig, time: float) -> float:
    day = int(time // config.day_length) % len(config.day_load_factors)
    return config.day_load_factors[day]


def _poisson_arrivals(
    rng: np.random.Generator,
    base_rate: float,
    duration: float,
    config: WorkloadConfig,
) -> list[float]:
    """Inhomogeneous Poisson arrivals via thinning against the day profile."""
    if base_rate <= 0:
        return []
    peak = base_rate * max(config.day_load_factors)
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= duration:
            return times
        accept = base_rate * _load_factor_at(config, t) / peak
        if rng.random() < accept:
            times.append(t)


def generate_schedule(
    config: WorkloadConfig,
    duration: float,
    rng: np.random.Generator,
    external_hosts: list[int] | None = None,
) -> WorkloadSchedule:
    """Produce the deterministic event schedule for one simulation run.

    Job input sizes are log-uniform within each template's range, which
    yields the heavy-tailed mix of tiny and huge jobs the paper
    describes.  External ingestions are skipped when the topology has no
    external hosts.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    names = sorted(config.template_weights)
    weights = np.array([config.template_weights[name] for name in names], dtype=float)
    weights = weights / weights.sum()

    jobs: list[JobSpec] = []
    for index, time in enumerate(_poisson_arrivals(rng, config.job_arrival_rate,
                                                   duration, config)):
        template = config.templates[str(rng.choice(names, p=weights))]
        log_low = np.log(template.min_input_bytes)
        log_high = np.log(template.max_input_bytes)
        input_bytes = float(np.exp(rng.uniform(log_low, log_high)))
        jobs.append(
            JobSpec(
                name=f"{template.name}-{index}",
                template=template,
                input_bytes=input_bytes,
                submit_time=time,
            )
        )

    ingestions: list[IngestionEvent] = []
    if external_hosts:
        for time in _poisson_arrivals(rng, config.ingestion_rate, duration, config):
            low, high = config.ingestion_bytes_range
            total = float(np.exp(rng.uniform(np.log(low), np.log(high))))
            host = int(rng.choice(external_hosts))
            ingestions.append(IngestionEvent(time=time, total_bytes=total,
                                             external_host=host))

    evacuations = [
        EvacuationEvent(time=time)
        for time in _poisson_arrivals(rng, config.evacuation_rate, duration, config)
    ]
    return WorkloadSchedule(
        jobs=jobs,
        ingestions=ingestions,
        evacuations=evacuations,
        duration=duration,
    )
