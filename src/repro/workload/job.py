"""Runtime job entities: jobs, phases, vertices and their data inputs.

These are the mutable execution-state counterparts of the declarative
:mod:`repro.workload.scope` structures.  The executor in
:mod:`repro.workload.runtime` drives their state machines; everything
here is bookkeeping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .scope import CompiledJob, CompiledPhase

__all__ = [
    "VertexState",
    "JobState",
    "InputSource",
    "VertexRuntime",
    "PhaseRuntime",
    "JobRuntime",
]


class VertexState(enum.Enum):
    """Lifecycle of a vertex."""

    WAITING = "waiting"        # upstream data not yet available
    QUEUED = "queued"          # runnable but no free slot
    FETCHING = "fetching"      # reading inputs (possibly over the network)
    COMPUTING = "computing"    # crunching
    DONE = "done"
    FAILED = "failed"          # unrecoverable read failure


class JobState(enum.Enum):
    """Lifecycle of a job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    KILLED = "killed"          # killed after repeated read failures (§4.2)


@dataclass
class InputSource:
    """One input a vertex must read before computing.

    ``servers`` are the locations holding a copy (block replicas, or the
    single server where an upstream vertex wrote its output).  The
    executor reads locally when the vertex is co-located with a copy and
    over the network otherwise.
    """

    servers: tuple[int, ...]
    size: float
    description: str = ""

    def __post_init__(self) -> None:
        if not self.servers:
            raise ValueError("input source needs at least one holder")
        if self.size < 0:
            raise ValueError("input size must be non-negative")


@dataclass
class VertexRuntime:
    """Execution state of one vertex."""

    vertex_id: int
    job_id: int
    phase_index: int
    inputs: list[InputSource] = field(default_factory=list)
    output_bytes: float = 0.0
    state: VertexState = VertexState.WAITING
    server: int | None = None
    start_time: float | None = None
    end_time: float | None = None
    read_failures: int = 0
    remote_bytes_read: float = 0.0
    local_bytes_read: float = 0.0

    @property
    def total_input_bytes(self) -> float:
        """Bytes across all inputs."""
        return sum(source.size for source in self.inputs)


@dataclass
class PhaseRuntime:
    """Execution state of one phase."""

    compiled: CompiledPhase
    vertices: list[VertexRuntime] = field(default_factory=list)
    started: bool = False
    start_time: float | None = None
    end_time: float | None = None

    @property
    def done(self) -> bool:
        """True once the phase's full complement of vertices is terminal.

        Pipelined phases spawn vertices incrementally (one per upstream
        completion), so "every spawned vertex is terminal" is not enough:
        the phase is done only when all ``compiled.num_vertices`` have
        been spawned *and* finished.
        """
        return len(self.vertices) >= self.compiled.num_vertices and all(
            v.state in (VertexState.DONE, VertexState.FAILED) for v in self.vertices
        )

    @property
    def completed_vertices(self) -> int:
        """Number of vertices that finished successfully."""
        return sum(1 for v in self.vertices if v.state == VertexState.DONE)


@dataclass
class JobRuntime:
    """Execution state of one job."""

    job_id: int
    compiled: CompiledJob
    phases: list[PhaseRuntime] = field(default_factory=list)
    state: JobState = JobState.PENDING
    start_time: float | None = None
    end_time: float | None = None
    read_failure_count: int = 0
    #: servers that ran at least one vertex of this job, for the
    #: job-metadata tomography prior (paper §5.3).
    servers_used: set[int] = field(default_factory=set)

    @property
    def name(self) -> str:
        """The job's display name."""
        return self.compiled.spec.name

    @property
    def template_name(self) -> str:
        """The template archetype this job instantiates."""
        return self.compiled.spec.template.name
