"""Job execution: the engine that turns compiled jobs into network traffic.

This module is where the paper's qualitative explanations of datacenter
traffic become mechanism:

* **Work-seeks-bandwidth** — vertices are placed via the
  :class:`~repro.workload.scheduler.SlotScheduler` locality ladder, so most
  exchanges stay in-rack (Fig 2's diagonal blocks).
* **Scatter-gather** — barrier phases (Aggregate, Combine) pull a bucket's
  worth of data from *every* upstream vertex (Fig 2's horizontal and
  vertical lines).
* **Stop-and-go flow creation** — each vertex opens at most
  ``max_connections`` fetches and starts queued fetches on a
  ``connection_quantum`` grid, producing the periodic inter-arrival modes
  of Fig 11.
* **Read failures under congestion** — remote fetches that overlapped a
  high-utilisation link carry a multiplied failure hazard; jobs whose
  vertices exhaust retries are killed and "logged as a read failure"
  (§4.2, Fig 8).
* **Evacuations** — the automated management system drains every block
  off a problem server, an unexpected source of long congestion episodes.

The executor is deliberately decoupled from the simulator through the
small :class:`SimulationServices` protocol, so it can be unit-tested with
a fake service implementation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from ..cluster.topology import ClusterTopology
from ..instrumentation.applog import ApplicationLog
from ..simulation.transport import Transfer, TransferMeta
from ..telemetry import NULL_TELEMETRY, Telemetry
from .blockstore import BlockStore
from .generator import WorkloadConfig, WorkloadSchedule
from .job import (
    InputSource,
    JobRuntime,
    JobState,
    PhaseRuntime,
    VertexRuntime,
    VertexState,
)
from .scheduler import PlacementLevel, SlotScheduler
from .scope import JobSpec, compile_job

__all__ = ["SimulationServices", "JobExecutor"]

#: A vertex retries a failed read this many times before its job is killed.
_MAX_READ_RETRIES = 5


class SimulationServices(Protocol):
    """What the executor needs from its host simulator."""

    def now(self) -> float:
        """Current simulation time."""

    def schedule(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at an absolute time."""

    def start_transfer(
        self,
        src: int,
        dst: int,
        size: float,
        meta: TransferMeta,
        on_complete: Callable[[Transfer], None],
    ) -> None:
        """Launch a network transfer and call back on completion."""

    def max_path_utilization(self, src: int, dst: int, start: float, end: float) -> float:
        """Peak link utilisation seen along the src→dst path in a window."""


@dataclass
class _FetchQueue:
    """Connection-capped, quantum-paced fetch state for one vertex."""

    pending: deque[InputSource]
    in_flight: int = 0
    local_read_done: bool = True


class JobExecutor:
    """Drives jobs, ingestion, egress and evacuations through a simulator."""

    def __init__(
        self,
        topology: ClusterTopology,
        config: WorkloadConfig,
        services: SimulationServices,
        applog: ApplicationLog,
        rng: np.random.Generator,
        congestion_threshold: float = 0.7,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.services = services
        self.applog = applog
        self.congestion_threshold = congestion_threshold
        self._rng = rng
        # Telemetry instruments are resolved once here; on the null
        # session every one is a shared no-op, so the hot paths below
        # stay branch-free.
        tele = telemetry or NULL_TELEMETRY
        self._ctr_jobs_started = tele.counter("workload.jobs_started")
        self._ctr_jobs_finished = {
            "succeeded": tele.counter("workload.jobs_finished", outcome="succeeded"),
            "killed_read_failure": tele.counter(
                "workload.jobs_finished", outcome="killed_read_failure"
            ),
        }
        self._ctr_phases_started = tele.counter("workload.phases_started")
        self._ctr_phases_finished = tele.counter("workload.phases_finished")
        self._ctr_vertices_started = tele.counter("workload.vertices_started")
        self._ctr_vertices_finished = tele.counter("workload.vertices_finished")
        self._ctr_read_failures = tele.counter("workload.read_failures")
        self.blockstore = BlockStore(
            topology, rng=rng, replication_factor=config.replication_factor
        )
        self.scheduler = SlotScheduler(
            topology,
            rng=rng,
            slots_per_server=config.slots_per_server,
            locality_bias=config.locality_bias,
        )
        self.jobs: dict[int, JobRuntime] = {}
        self._vertices: dict[int, VertexRuntime] = {}
        self._fetch_queues: dict[int, _FetchQueue] = {}
        self._job_manager: dict[int, int] = {}
        #: Queued vertices indexed by the servers holding their data,
        #: plus a FIFO of vertices whose locality patience has expired.
        self._local_waiters: dict[int, deque[int]] = {}
        self._expired_waiters: deque[int] = deque()
        self._next_job_id = 0
        self._next_vertex_id = 0
        #: Counters for traffic attribution sanity checks.
        self.transfers_requested = 0
        self._seed_initial_data()

    def _seed_initial_data(self) -> None:
        """Populate the block store with the cluster's standing datasets.

        Real servers hold terabytes of replicated blocks before any
        measured job runs; evacuating one of them therefore streams data
        for minutes.  One dataset is anchored per server so storage is
        spread evenly.
        """
        per_server = self.config.initial_data_per_server
        if per_server <= 0:
            return
        for server in range(self.topology.num_servers):
            self.blockstore.create_dataset(
                name=f"standing-{server}",
                total_bytes=per_server,
                block_size=self.config.block_size,
                writer=server,
            )

    # ----------------------------------------------------------- scheduling

    def install_schedule(self, schedule: WorkloadSchedule) -> None:
        """Register every top-level workload event with the simulator."""
        for spec in schedule.jobs:
            self.services.schedule(spec.submit_time, self._make_job_starter(spec))
        for ingestion in schedule.ingestions:
            self.services.schedule(
                ingestion.time,
                self._make_ingestion_starter(ingestion.external_host,
                                             ingestion.total_bytes),
            )
        for evacuation in schedule.evacuations:
            self.services.schedule(evacuation.time, self._run_evacuation)

    def _make_job_starter(self, spec: JobSpec) -> Callable[[], None]:
        return lambda: self._start_job(spec)

    def _make_ingestion_starter(self, host: int, total: float) -> Callable[[], None]:
        return lambda: self._start_ingestion(host, total)

    # ------------------------------------------------------------------ jobs

    def _home_servers(self, scope: str) -> list[int] | None:
        """Pick the home locality pool for a job's input data."""
        topo = self.topology
        if scope == "rack":
            rack = int(self._rng.integers(topo.num_racks))
            return list(topo.servers_in_rack(rack))
        if scope == "vlan":
            vlan = int(self._rng.integers(topo.num_vlans))
            return [
                s
                for rack in topo.racks_in_vlan(vlan)
                for s in topo.servers_in_rack(rack)
            ]
        return None

    def _start_job(self, spec: JobSpec) -> None:
        compiled = compile_job(
            spec,
            block_size=self.config.block_size,
            target_bucket_bytes=self.config.target_bucket_bytes,
            max_vertices_per_phase=self.config.max_vertices_per_phase,
            max_extract_vertices=self.config.max_extract_vertices,
        )
        job = JobRuntime(job_id=self._next_job_id, compiled=compiled)
        self._next_job_id += 1
        self.jobs[job.job_id] = job
        job.state = JobState.RUNNING
        job.start_time = self.services.now()
        # Input data pre-exists; its placement concentrates in the job's
        # home scope, which is what lets work seek bandwidth.  The job
        # manager runs where the job lives.
        home = self._home_servers(spec.template.home_scope)
        manager_pool = home if home else range(self.topology.num_servers)
        self._job_manager[job.job_id] = int(self._rng.choice(list(manager_pool)))
        dataset = self.blockstore.create_dataset(
            name=f"input-{spec.name}", total_bytes=spec.input_bytes,
            block_size=self.config.block_size,
            home_servers=home,
            home_bias=self.config.input_home_bias if home else 0.0,
        )
        for compiled_phase in compiled.phases:
            job.phases.append(PhaseRuntime(compiled=compiled_phase))
        self.applog.record_job_start(job.job_id, spec.name, spec.template.name,
                                     self.services.now())
        self._ctr_jobs_started.inc()
        extract_phase = job.phases[0]
        blocks_per_vertex: list[list] = [[] for _ in range(extract_phase.compiled.num_vertices)]
        for index, block in enumerate(dataset.blocks):
            blocks_per_vertex[index % len(blocks_per_vertex)].append(block)
        for block_group in blocks_per_vertex:
            vertex = self._new_vertex(job, phase_index=0)
            for block in block_group:
                vertex.inputs.append(
                    InputSource(servers=block.replicas, size=block.size,
                                description=f"block-{block.block_id}")
                )
            extract_phase.vertices.append(vertex)
        self._mark_phase_started(job, 0)
        for vertex in extract_phase.vertices:
            self._try_start_vertex(vertex)

    def _new_vertex(self, job: JobRuntime, phase_index: int) -> VertexRuntime:
        vertex = VertexRuntime(
            vertex_id=self._next_vertex_id, job_id=job.job_id, phase_index=phase_index
        )
        self._next_vertex_id += 1
        self._vertices[vertex.vertex_id] = vertex
        return vertex

    def _mark_phase_started(self, job: JobRuntime, phase_index: int) -> None:
        phase = job.phases[phase_index]
        if not phase.started:
            phase.started = True
            phase.start_time = self.services.now()
            self.applog.record_phase_start(
                job.job_id, phase_index, phase.compiled.phase_type.value,
                self.services.now(),
            )
            self._ctr_phases_started.inc()

    # ------------------------------------------------------------- placement

    def _preferred_servers(self, vertex: VertexRuntime) -> list[int]:
        """Servers holding the vertex's input data, heaviest first.

        Ties preserve replica order: a block's primary copy (the writer's,
        usually in the dataset's home rack) outranks the rack-diversity
        copy, the way storage clients read the nearest replica first.
        """
        weight: dict[int, float] = {}
        appearance: dict[int, int] = {}
        for source in vertex.inputs:
            share = source.size / len(source.servers)
            for position, server in enumerate(source.servers):
                weight[server] = weight.get(server, 0.0) + share
                appearance.setdefault(server, len(appearance) * 10 + position)
        return sorted(weight, key=lambda s: (-weight[s], appearance[s]))

    def _is_data_anchored(self, vertex: VertexRuntime) -> bool:
        """Every vertex with inputs prefers waiting briefly for a slot
        near its data: extract next to a block replica, pipelined stages
        next to their single upstream output, and shuffle vertices next to
        their heaviest producers.  The patience is bounded
        (``locality_wait``), so placement degrades down the ladder rather
        than stalling."""
        return bool(vertex.inputs)

    def _try_start_vertex(self, vertex: VertexRuntime) -> None:
        """Attempt a vertex's first placement; queue it on refusal.

        Data-anchored vertices start by demanding a local slot (delay
        scheduling); the patience expiry and slot-release hooks relax
        that over time.
        """
        if vertex.state not in (VertexState.WAITING, VertexState.QUEUED):
            return
        job = self.jobs[vertex.job_id]
        if job.state != JobState.RUNNING:
            return
        # Delay scheduling only applies when the cluster honours locality
        # at all (the A1 ablation switches both off together).
        anchored = (
            self._is_data_anchored(vertex)
            and self.config.locality_wait > 0
            and self.config.locality_bias > 0
        )
        max_level = PlacementLevel.LOCAL if anchored else PlacementLevel.CLUSTER
        placement = self.scheduler.try_place(
            self._preferred_servers(vertex)[:4], max_level=max_level
        )
        if placement is None:
            self._queue_vertex(vertex, patient=anchored)
            return
        self._activate_vertex(vertex, placement)

    def _queue_vertex(self, vertex: VertexRuntime, patient: bool) -> None:
        """Park a vertex: patient vertices are indexed by their preferred
        servers for local matching and get a patience clock; impatient
        ones go straight on the any-slot queue."""
        if vertex.state == VertexState.QUEUED:
            return
        vertex.state = VertexState.QUEUED
        vertex_id = vertex.vertex_id
        if patient:
            for server in self._preferred_servers(vertex)[:4]:
                if 0 <= server < self.topology.num_servers:
                    self._local_waiters.setdefault(server, deque()).append(vertex_id)
            self.services.schedule(
                self.services.now() + self.config.locality_wait,
                lambda: self._patience_expired(vertex_id),
            )
        else:
            self._expired_waiters.append(vertex_id)

    def _patience_expired(self, vertex_id: int) -> None:
        """A waiting vertex gives up on locality and takes any free slot."""
        vertex = self._vertices[vertex_id]
        if vertex.state != VertexState.QUEUED:
            return
        placement = self.scheduler.try_place(self._preferred_servers(vertex)[:4])
        if placement is not None:
            self._activate_vertex(vertex, placement)
        else:
            self._expired_waiters.append(vertex_id)

    def _activate_vertex(self, vertex: VertexRuntime, placement) -> None:
        job = self.jobs[vertex.job_id]
        vertex.state = VertexState.FETCHING
        vertex.server = placement.server
        vertex.start_time = self.services.now()
        job.servers_used.add(placement.server)
        self.applog.record_vertex_start(
            vertex.vertex_id, job.job_id, vertex.phase_index, placement.server,
            placement.level.name, self.services.now(),
        )
        self._ctr_vertices_started.inc()
        self._send_control_message(self._job_manager[job.job_id], placement.server, job)
        self._begin_fetches(vertex)

    def _on_slot_freed(self, server: int) -> None:
        """Offer a freed slot: data-local waiters first, then the oldest
        vertex whose patience has expired.

        Local-first matching is what a data-aware job manager does, and
        it is what keeps extract reads off the network even when the
        cluster runs hot.  Entries for vertices that have moved on are
        pruned lazily.
        """
        waiters = self._local_waiters.get(server)
        while waiters:
            vertex_id = waiters.popleft()
            vertex = self._vertices[vertex_id]
            if vertex.state != VertexState.QUEUED:
                continue
            if self.jobs[vertex.job_id].state != JobState.RUNNING:
                vertex.state = VertexState.FAILED
                continue
            placement = self.scheduler.try_place(
                self._preferred_servers(vertex)[:4], max_level=PlacementLevel.LOCAL
            )
            if placement is not None:
                self._activate_vertex(vertex, placement)
                return
            # Could not place locally after all (stale index entry for a
            # server that is full again); put it back and stop scanning.
            waiters.appendleft(vertex_id)
            break
        while self._expired_waiters:
            vertex_id = self._expired_waiters.popleft()
            vertex = self._vertices[vertex_id]
            if vertex.state != VertexState.QUEUED:
                continue
            if self.jobs[vertex.job_id].state != JobState.RUNNING:
                vertex.state = VertexState.FAILED
                continue
            placement = self.scheduler.try_place(self._preferred_servers(vertex)[:4])
            if placement is not None:
                self._activate_vertex(vertex, placement)
            else:
                self._expired_waiters.appendleft(vertex_id)
            return

    # -------------------------------------------------------------- fetching

    def _begin_fetches(self, vertex: VertexRuntime) -> None:
        assert vertex.server is not None
        local_bytes = 0.0
        remote: deque[InputSource] = deque()
        for source in vertex.inputs:
            if vertex.server in source.servers:
                local_bytes += source.size
                vertex.local_bytes_read += source.size
            elif source.size > 0:
                remote.append(source)
        queue = _FetchQueue(pending=remote, local_read_done=local_bytes == 0)
        self._fetch_queues[vertex.vertex_id] = queue
        if local_bytes > 0:
            delay = local_bytes / self.config.disk_read_rate
            self.services.schedule(
                self.services.now() + delay,
                lambda: self._local_read_done(vertex.vertex_id),
            )
        if not queue.pending and queue.local_read_done:
            self._start_compute(vertex)
            return
        for _ in range(min(self.config.max_connections, len(queue.pending))):
            self._launch_next_fetch(vertex.vertex_id, first_wave=True)

    def _quantized_start(self, first_wave: bool = False) -> float:
        """Next flow-creation opportunity on the stop-and-go grid."""
        quantum = self.config.connection_quantum
        now = self.services.now()
        base = np.ceil((now + 1e-9) / quantum) * quantum
        jitter = float(self._rng.uniform(0.0, self.config.connection_jitter))
        if first_wave:
            # The first wave of a vertex's fetches rides the same slot.
            return float(base) + jitter
        return float(base) + jitter

    def _launch_next_fetch(self, vertex_id: int, first_wave: bool = False) -> None:
        vertex = self._vertices[vertex_id]
        queue = self._fetch_queues[vertex_id]
        if not queue.pending:
            return
        source = queue.pending.popleft()
        queue.in_flight += 1
        start_at = self._quantized_start(first_wave=first_wave)
        self.services.schedule(start_at, lambda: self._fire_fetch(vertex_id, source))

    def _fire_fetch(self, vertex_id: int, source: InputSource) -> None:
        vertex = self._vertices[vertex_id]
        job = self.jobs[vertex.job_id]
        queue = self._fetch_queues[vertex_id]
        if job.state != JobState.RUNNING or vertex.state != VertexState.FETCHING:
            queue.in_flight -= 1
            return
        assert vertex.server is not None
        candidates = [s for s in source.servers if s != vertex.server]
        src = int(self._rng.choice(candidates)) if candidates else source.servers[0]
        meta = TransferMeta(
            kind="fetch",
            job_id=job.job_id,
            phase_index=vertex.phase_index,
            vertex_id=vertex.vertex_id,
            connection_key=(job.job_id, vertex.vertex_id, src),
        )
        fetch_start = self.services.now()
        self.transfers_requested += 1

        def on_complete(transfer: Transfer) -> None:
            self._fetch_completed(vertex_id, source, transfer, fetch_start)

        self.services.start_transfer(src, vertex.server, source.size, meta, on_complete)

    def _fetch_completed(
        self,
        vertex_id: int,
        source: InputSource,
        transfer: Transfer,
        fetch_start: float,
    ) -> None:
        vertex = self._vertices[vertex_id]
        job = self.jobs[vertex.job_id]
        queue = self._fetch_queues[vertex_id]
        queue.in_flight -= 1
        if job.state != JobState.RUNNING or vertex.state != VertexState.FETCHING:
            return
        vertex.remote_bytes_read += source.size
        if self._read_failed(transfer, fetch_start):
            vertex.read_failures += 1
            job.read_failure_count += 1
            self.applog.record_read_failure(
                job.job_id, vertex.vertex_id, transfer.src, transfer.dst,
                self.services.now(),
            )
            self._ctr_read_failures.inc()
            if vertex.read_failures > _MAX_READ_RETRIES:
                self._kill_job(job)
                return
            queue.pending.append(source)  # retry, possibly other replica
            self._launch_next_fetch(vertex_id)
            return
        if queue.pending:
            self._launch_next_fetch(vertex_id)
        elif queue.in_flight == 0 and queue.local_read_done:
            self._start_compute(vertex)

    def _read_failed(self, transfer: Transfer, fetch_start: float) -> bool:
        """Sample the read-failure hazard for a completed fetch.

        "Not all read failures are due to the network; besides congestion
        they could be caused by an unresponsive machine, bad software or
        bad disk sectors" (§4.2) — hence the unconditional
        ``non_network_failure_prob`` term.
        """
        config = self.config
        utilization = self.services.max_path_utilization(
            transfer.src, transfer.dst, fetch_start, self.services.now()
        )
        hazard = config.read_failure_base
        if utilization >= self.congestion_threshold:
            hazard *= config.read_failure_congested_multiplier
        hazard += config.non_network_failure_prob
        return bool(self._rng.random() < min(hazard, 1.0))

    def _local_read_done(self, vertex_id: int) -> None:
        vertex = self._vertices[vertex_id]
        queue = self._fetch_queues.get(vertex_id)
        if queue is None or vertex.state != VertexState.FETCHING:
            return
        # Non-network failures (bad disk sectors, bad software, an
        # unresponsive machine, §4.2) strike local reads too — they are
        # what gives congestion-free jobs a non-zero failure baseline.
        if self._rng.random() < self.config.non_network_failure_prob:
            job = self.jobs[vertex.job_id]
            vertex.read_failures += 1
            job.read_failure_count += 1
            assert vertex.server is not None
            self.applog.record_read_failure(
                job.job_id, vertex.vertex_id, vertex.server, vertex.server,
                self.services.now(),
            )
            self._ctr_read_failures.inc()
            if vertex.read_failures > _MAX_READ_RETRIES:
                self._kill_job(job)
                return
            # Retry the local read (e.g. from the rack-local replica).
            delay = max(vertex.local_bytes_read, 1.0) / self.config.disk_read_rate
            self.services.schedule(
                self.services.now() + delay,
                lambda: self._local_read_done(vertex_id),
            )
            return
        queue.local_read_done = True
        if not queue.pending and queue.in_flight == 0:
            self._start_compute(vertex)

    # --------------------------------------------------------------- compute

    def _start_compute(self, vertex: VertexRuntime) -> None:
        job = self.jobs[vertex.job_id]
        if job.state != JobState.RUNNING or vertex.state != VertexState.FETCHING:
            return
        vertex.state = VertexState.COMPUTING
        noise = float(
            np.exp(self._rng.normal(0.0, self.config.compute_noise_sigma))
        )
        duration = 0.05 + vertex.total_input_bytes / self.config.compute_throughput * noise
        self.services.schedule(
            self.services.now() + duration,
            lambda: self._vertex_done(vertex.vertex_id),
        )

    def _vertex_done(self, vertex_id: int) -> None:
        vertex = self._vertices[vertex_id]
        job = self.jobs[vertex.job_id]
        if job.state != JobState.RUNNING or vertex.state != VertexState.COMPUTING:
            return
        phase = job.phases[vertex.phase_index]
        compiled = phase.compiled
        share = vertex.total_input_bytes / max(compiled.input_bytes, 1.0)
        vertex.output_bytes = compiled.output_bytes * share
        vertex.state = VertexState.DONE
        vertex.end_time = self.services.now()
        assert vertex.server is not None
        self.scheduler.release(vertex.server)
        self.applog.record_vertex_end(
            vertex.vertex_id, job.job_id, vertex.phase_index, self.services.now(),
            read_failures=vertex.read_failures,
            remote_bytes=vertex.remote_bytes_read,
        )
        self._ctr_vertices_finished.inc()
        self._send_control_message(vertex.server, self._job_manager[job.job_id], job)
        self._fetch_queues.pop(vertex_id, None)
        self._advance_phase(job, vertex)
        self._on_slot_freed(vertex.server)

    # ------------------------------------------------------- phase plumbing

    def _advance_phase(self, job: JobRuntime, finished: VertexRuntime) -> None:
        phase_index = finished.phase_index
        phase = job.phases[phase_index]
        next_index = phase_index + 1
        if next_index < len(job.phases):
            next_phase = job.phases[next_index]
            if next_phase.compiled.pipelined:
                self._start_pipelined_successor(job, next_index, finished)
            elif phase.done:
                self._start_barrier_phase(job, next_index)
        if phase.done and phase.end_time is None:
            phase.end_time = self.services.now()
            self.applog.record_phase_end(job.job_id, phase_index, self.services.now())
            self._ctr_phases_finished.inc()
            if phase_index == len(job.phases) - 1:
                self._complete_job(job)

    def _start_pipelined_successor(
        self, job: JobRuntime, phase_index: int, upstream: VertexRuntime
    ) -> None:
        """One pipelined vertex per upstream vertex, started as data lands."""
        self._mark_phase_started(job, phase_index)
        phase = job.phases[phase_index]
        vertex = self._new_vertex(job, phase_index)
        assert upstream.server is not None
        vertex.inputs.append(
            InputSource(
                servers=(upstream.server,),
                size=upstream.output_bytes,
                description=f"pipe-from-{upstream.vertex_id}",
            )
        )
        phase.vertices.append(vertex)
        self._try_start_vertex(vertex)

    def _start_barrier_phase(self, job: JobRuntime, phase_index: int) -> None:
        """Start a shuffle phase: every bucket pulls its partition from
        every upstream producer.

        Fetches are grouped by producer *server*: a bucket vertex opens
        one connection per server holding upstream output and streams all
        of that server's partitions over it, the way real shuffle
        services do — which both bounds fan-in (an incast safeguard,
        §4.4) and makes shuffle flow sizes track chunking.
        """
        phase = job.phases[phase_index]
        if phase.started:
            return
        self._mark_phase_started(job, phase_index)
        upstream = job.phases[phase_index - 1]
        bytes_by_server: dict[int, float] = {}
        for producer in upstream.vertices:
            if producer.state == VertexState.DONE and producer.output_bytes > 0:
                assert producer.server is not None
                bytes_by_server[producer.server] = (
                    bytes_by_server.get(producer.server, 0.0) + producer.output_bytes
                )
        buckets = phase.compiled.num_vertices
        # Partition skew: each producer-server's output splits unevenly
        # over buckets (hot keys).  Weights are normalised per server so
        # producer bytes are conserved exactly.
        sigma = self.config.partition_skew_sigma
        servers = sorted(bytes_by_server)
        if sigma > 0 and servers:
            raw = np.exp(self._rng.normal(0.0, sigma, size=(len(servers), buckets)))
            weights = raw * buckets / raw.sum(axis=1, keepdims=True)
        else:
            weights = np.ones((len(servers), buckets))
        for bucket in range(buckets):
            vertex = self._new_vertex(job, phase_index)
            for row, server in enumerate(servers):
                vertex.inputs.append(
                    InputSource(
                        servers=(server,),
                        size=bytes_by_server[server] * weights[row, bucket] / buckets,
                        description=f"shuffle-from-server-{server}",
                    )
                )
            phase.vertices.append(vertex)
        for vertex in phase.vertices:
            self._try_start_vertex(vertex)

    def _complete_job(self, job: JobRuntime) -> None:
        job.state = JobState.SUCCEEDED
        job.end_time = self.services.now()
        self.applog.record_job_end(job.job_id, "succeeded", self.services.now(),
                                   read_failures=job.read_failure_count)
        self._ctr_jobs_finished["succeeded"].inc()
        if job.compiled.spec.template.writes_output:
            self._write_job_output(job)

    def _kill_job(self, job: JobRuntime) -> None:
        job.state = JobState.KILLED
        job.end_time = self.services.now()
        self.applog.record_job_end(job.job_id, "killed_read_failure",
                                   self.services.now(),
                                   read_failures=job.read_failure_count)
        self._ctr_jobs_finished["killed_read_failure"].inc()
        freed: list[int] = []
        for phase in job.phases:
            for vertex in phase.vertices:
                if vertex.state in (VertexState.FETCHING, VertexState.COMPUTING):
                    assert vertex.server is not None
                    self.scheduler.release(vertex.server)
                    freed.append(vertex.server)
                    vertex.state = VertexState.FAILED
                    vertex.end_time = self.services.now()
                elif vertex.state in (VertexState.WAITING, VertexState.QUEUED):
                    vertex.state = VertexState.FAILED
        for server in freed:
            self._on_slot_freed(server)

    # ---------------------------------------------------- output replication

    def _write_job_output(self, job: JobRuntime) -> None:
        """Replicate final-phase outputs into the block store.

        Outputs are written locally first (§3: "outputs are always written
        to the local disk"), then replicas stream to the chosen peers.
        """
        dataset = self.blockstore.create_dataset(
            name=f"output-{job.name}", total_bytes=max(job.compiled.output_bytes, 1.0),
            block_size=self.config.block_size,
        )
        # create_dataset spread blocks randomly; re-anchor them on the
        # producing vertices by issuing replication flows from producers.
        final_phase = job.phases[-1]
        producers = [v for v in final_phase.vertices if v.state == VertexState.DONE]
        if not producers:
            return
        egress_planned = bool(
            self.topology.spec.external_hosts
            and self._rng.random() < self.config.egress_probability
        )
        replica_holders: list[int] = []
        for index, block in enumerate(dataset.blocks):
            producer = producers[index % len(producers)]
            assert producer.server is not None
            replicas = self.blockstore.choose_replicas(writer=producer.server)
            replica_holders.append(producer.server)
            previous = producer.server
            for replica in replicas[1:]:
                meta = TransferMeta(
                    kind="replication",
                    job_id=job.job_id,
                    phase_index=len(job.phases) - 1,
                    connection_key=(job.job_id, "repl", previous, replica),
                )
                self.transfers_requested += 1
                self.services.start_transfer(
                    previous, replica, block.size, meta, lambda _t: None
                )
                previous = replica
        if egress_planned:
            self._start_egress(job, dataset.blocks, replica_holders)

    def _start_egress(self, job: JobRuntime, blocks: list, holders: list[int]) -> None:
        host = int(self._rng.choice(list(self.topology.external_hosts())))
        for block, holder in zip(blocks, holders):
            meta = TransferMeta(
                kind="egress",
                job_id=job.job_id,
                connection_key=(job.job_id, "egress", holder, host),
            )
            self.transfers_requested += 1
            self.services.start_transfer(holder, host, block.size, meta,
                                         lambda _t: None)

    # ------------------------------------------------------------- ingestion

    def _start_ingestion(self, host: int, total_bytes: float) -> None:
        """An external host uploads a dataset, block by block."""
        dataset = self.blockstore.create_dataset(
            name=f"ingest-{host}-{self.services.now():.0f}",
            total_bytes=total_bytes,
            block_size=self.config.block_size,
        )
        queue = deque(dataset.blocks)

        def upload_next() -> None:
            if not queue:
                return
            block = queue.popleft()
            first = block.replicas[0]
            meta = TransferMeta(kind="ingest",
                                connection_key=("ingest", host, first))
            self.transfers_requested += 1

            def on_landed(_transfer: Transfer) -> None:
                previous = first
                for replica in block.replicas[1:]:
                    repl_meta = TransferMeta(
                        kind="replication",
                        connection_key=("ingest-repl", previous, replica),
                    )
                    self.transfers_requested += 1
                    self.services.start_transfer(previous, replica, block.size,
                                                 repl_meta, lambda _t: None)
                    previous = replica
                upload_next()

            self.services.start_transfer(host, first, block.size, meta, on_landed)

        # A small upload window keeps ingestion from serialising fully.
        for _ in range(2):
            upload_next()

    # ------------------------------------------------------------ evacuation

    def _run_evacuation(self) -> None:
        """Drain the usable blocks off a failing rack's servers (§4.2).

        "When a server repeatedly experiences problems, the automated
        management system ... evacuates all the usable blocks on that
        server prior to alerting a human."  Failures correlate within a
        rack (shared ToR, power), so one event drains up to
        ``evacuation_servers`` machines of the same rack concurrently —
        which is what pins that rack's uplink at capacity for minutes and
        produces the long, localized congestion episodes of Fig 6.
        """
        occupied = [
            s for s in range(self.topology.num_servers)
            if self.blockstore.bytes_on(s) > 0
        ]
        if not occupied:
            return
        anchor = int(self._rng.choice(occupied))
        rack = self.topology.rack_of(anchor)
        victims = [
            s for s in self.topology.servers_in_rack(rack)
            if self.blockstore.bytes_on(s) > 0
        ][: max(1, self.config.evacuation_servers)]
        for server in victims:
            self._evacuate_server(server)

    def _evacuate_server(self, server: int) -> None:
        transfers = self.blockstore.evacuate(server)
        if not transfers:
            return
        self.applog.record_evacuation(server, self.services.now(), len(transfers))
        queue = deque(transfers)
        window = max(2, self.config.max_connections)

        def copy_next() -> None:
            if not queue:
                return
            block, source, destination = queue.popleft()
            meta = TransferMeta(
                kind="evacuation",
                connection_key=("evac", server, source, destination),
            )
            self.transfers_requested += 1
            self.services.start_transfer(
                source, destination, block.size, meta, lambda _t: copy_next()
            )

        for _ in range(window):
            copy_next()

    # ---------------------------------------------------------- control plane

    def _send_control_message(self, src: int, dst: int, job: JobRuntime) -> None:
        """Small job-manager RPC; skipped when endpoints coincide."""
        if src == dst or self.config.control_message_bytes <= 0:
            return
        meta = TransferMeta(
            kind="control",
            job_id=job.job_id,
            connection_key=(job.job_id, "ctl", src, dst),
        )
        self.transfers_requested += 1
        self.services.start_transfer(
            src, dst, self.config.control_message_bytes, meta, lambda _t: None
        )
