"""Locality-seeking vertex placement — the *work-seeks-bandwidth* engine.

"Writers of data center applications prefer placing jobs that rely on
heavy traffic exchanges with each other in areas where high network
bandwidth is available ... the engineering decision of placing jobs
within the same server, within servers on the same rack or within servers
in the same VLAN and so on with decreasing order of preference" (paper
§4.1).  This scheduler implements exactly that preference ladder over a
pool of per-server compute slots.

The ladder is also what makes extract-phase remote reads *rare but
present*: "a small fraction of all extract instances read data off the
network if all of the cores on the machine that has the data are busy"
(§4.2) — i.e. when every preferred server's slots are taken, placement
falls through to a lower rung and the read crosses the network.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..cluster.topology import ClusterTopology

__all__ = ["PlacementLevel", "Placement", "SlotScheduler"]


class PlacementLevel(enum.Enum):
    """How close a vertex landed to its preferred data, best first."""

    LOCAL = 0
    RACK = 1
    VLAN = 2
    CLUSTER = 3


@dataclass(frozen=True)
class Placement:
    """A successful placement: the chosen server and the locality rung."""

    server: int
    level: PlacementLevel


class SlotScheduler:
    """Per-server compute slots with a locality preference ladder.

    ``locality_bias`` in [0, 1] is the probability that placement honours
    the ladder at all; with probability ``1 - locality_bias`` a vertex is
    placed uniformly at random among free servers.  The default of 1.0
    reproduces the paper's cluster; the ablation bench A1 sets it to 0 to
    show the work-seeks-bandwidth pattern dissolving.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        rng: np.random.Generator,
        slots_per_server: int = 4,
        locality_bias: float = 1.0,
    ) -> None:
        if slots_per_server < 1:
            raise ValueError("slots_per_server must be >= 1")
        if not 0.0 <= locality_bias <= 1.0:
            raise ValueError("locality_bias must lie in [0, 1]")
        self.topology = topology
        self.slots_per_server = slots_per_server
        self.locality_bias = locality_bias
        self._rng = rng
        self._busy = np.zeros(topology.num_servers, dtype=int)

    # -------------------------------------------------------------- capacity

    def free_slots(self, server: int) -> int:
        """Free slots on one server."""
        return self.slots_per_server - int(self._busy[server])

    def total_free_slots(self) -> int:
        """Free slots cluster-wide."""
        return self.slots_per_server * self.topology.num_servers - int(self._busy.sum())

    def utilization(self) -> float:
        """Fraction of all slots currently busy."""
        total = self.slots_per_server * self.topology.num_servers
        return float(self._busy.sum()) / total

    def release(self, server: int) -> None:
        """Return a slot on ``server`` to the pool."""
        if self._busy[server] <= 0:
            raise ValueError(f"server {server} has no slot to release")
        self._busy[server] -= 1

    # ------------------------------------------------------------- placement

    def _pick_least_loaded(self, candidates: list[int]) -> int | None:
        """Least-busy candidate with a free slot; random tie-break."""
        free = [s for s in candidates if self._busy[s] < self.slots_per_server]
        if not free:
            return None
        load = self._busy[free]
        best = load.min()
        tied = [s for s, l in zip(free, load) if l == best]
        return int(self._rng.choice(tied))

    def _pick_preferred_order(self, candidates: list[int]) -> int | None:
        """First candidate (in caller preference order) with a free slot."""
        for server in candidates:
            if self._busy[server] < self.slots_per_server:
                return server
        return None

    def try_place(
        self,
        preferred: list[int],
        max_level: PlacementLevel = PlacementLevel.CLUSTER,
    ) -> Placement | None:
        """Place a vertex as close to ``preferred`` servers as slots allow.

        ``max_level`` truncates the ladder: with ``PlacementLevel.LOCAL``
        the vertex is placed only if a preferred server has a free slot —
        the *delay scheduling* primitive (a data-local vertex briefly
        prefers waiting over running remotely).

        Returns ``None`` when no admissible server has a free slot (the
        caller queues the vertex).  A returned placement has already
        consumed a slot; callers must :meth:`release` it when the vertex
        finishes.
        """
        topo = self.topology
        choice: Placement | None = None
        honour_ladder = (
            bool(preferred)
            and (self.locality_bias >= 1.0 or self._rng.random() < self.locality_bias)
        )
        if max_level != PlacementLevel.CLUSTER and not honour_ladder:
            # A locality-restricted request only makes sense on the ladder.
            honour_ladder = bool(preferred)
        if honour_ladder:
            in_cluster = [s for s in preferred if 0 <= s < topo.num_servers]
            server = self._pick_preferred_order(in_cluster)
            if server is not None:
                choice = Placement(server, PlacementLevel.LOCAL)
            if (
                choice is None
                and in_cluster
                and max_level.value >= PlacementLevel.RACK.value
            ):
                racks = sorted({topo.rack_of(s) for s in in_cluster})
                rack_servers = [
                    s
                    for rack in racks
                    for s in topo.servers_in_rack(rack)
                    if s not in in_cluster
                ]
                server = self._pick_least_loaded(rack_servers)
                if server is not None:
                    choice = Placement(server, PlacementLevel.RACK)
            if (
                choice is None
                and in_cluster
                and max_level.value >= PlacementLevel.VLAN.value
            ):
                vlans = sorted({topo.vlan_of(s) for s in in_cluster})
                racks_seen = {topo.rack_of(s) for s in in_cluster}
                vlan_servers = [
                    s
                    for vlan in vlans
                    for rack in topo.racks_in_vlan(vlan)
                    if rack not in racks_seen
                    for s in topo.servers_in_rack(rack)
                ]
                server = self._pick_least_loaded(vlan_servers)
                if server is not None:
                    choice = Placement(server, PlacementLevel.VLAN)
        if choice is None and max_level == PlacementLevel.CLUSTER:
            free_mask = self._busy < self.slots_per_server
            if not free_mask.any():
                return None
            candidates = np.flatnonzero(free_mask)
            if honour_ladder or not preferred:
                load = self._busy[candidates]
                tied = candidates[load == load.min()]
                server = int(self._rng.choice(tied))
            else:
                server = int(self._rng.choice(candidates))
            choice = Placement(server, PlacementLevel.CLUSTER)
        if choice is None:
            return None
        self._busy[choice.server] += 1
        return choice
