"""Scope-like job compilation: job specs become phase DAGs.

Programmers in the measured cluster "write jobs in a high-level SQL like
language called Scope.  The scope compiler transforms the job into a
workflow (similar to that of Dryad) consisting of phases of different
types" (paper §3).  The common phase types the paper names:

* **Extract** — looks at the raw data and generates a stream of relevant
  records.  One vertex per input block, placed near the data.
* **Partition** — divides a stream into a set number of buckets.  May
  *pipeline* with Extract (starts on each extract vertex's output as soon
  as that vertex finishes).
* **Aggregate** — the Dryad equivalent of reduce.  Not pipelineable: a
  bucket's aggregate needs every upstream vertex's contribution first, so
  the phase is a barrier — the synchronisation that makes shuffle onsets
  bursty.
* **Combine** — implements joins.

This module is purely declarative: it sizes phases and vertex counts.
Execution (placement, timing, flows) happens in
:mod:`repro.workload.runtime`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..util.units import GB, MB

__all__ = [
    "PhaseType",
    "PhaseTemplate",
    "JobTemplate",
    "JobSpec",
    "CompiledPhase",
    "CompiledJob",
    "compile_job",
    "STANDARD_TEMPLATES",
]


class PhaseType(enum.Enum):
    """The Scope/Dryad phase types named in paper §3."""

    EXTRACT = "extract"
    PARTITION = "partition"
    AGGREGATE = "aggregate"
    COMBINE = "combine"


@dataclass(frozen=True)
class PhaseTemplate:
    """One phase of a job template.

    ``selectivity`` is output bytes per input byte.  ``pipelined`` phases
    start work per upstream vertex as its output lands; barrier phases
    wait for the entire upstream phase.
    """

    phase_type: PhaseType
    selectivity: float
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.selectivity <= 0:
            raise ValueError("selectivity must be positive")


@dataclass(frozen=True)
class JobTemplate:
    """A job archetype: phase chain plus an input-size regime.

    Jobs in the cluster "range over a broad spectrum from short
    interactive programs ... to long running, highly optimized,
    production jobs that build indexes" (paper §3); the standard template
    set below spans that spectrum.
    """

    name: str
    phases: tuple[PhaseTemplate, ...]
    min_input_bytes: float
    max_input_bytes: float
    writes_output: bool = True
    #: Where this job's input data concentrates: "rack" (short interactive
    #: jobs whose working set was written by similarly local jobs), "vlan",
    #: or "cluster" (big production inputs spread everywhere).  This is the
    #: data-side half of work-seeks-bandwidth.
    home_scope: str = "rack"

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("job template needs at least one phase")
        if self.phases[0].phase_type != PhaseType.EXTRACT:
            raise ValueError("job templates must start with an Extract phase")
        if self.min_input_bytes <= 0 or self.max_input_bytes < self.min_input_bytes:
            raise ValueError("invalid input size range")
        if self.home_scope not in ("rack", "vlan", "cluster"):
            raise ValueError(f"unknown home_scope {self.home_scope!r}")


@dataclass(frozen=True)
class JobSpec:
    """A concrete job instance awaiting compilation."""

    name: str
    template: JobTemplate
    input_bytes: float
    submit_time: float

    def __post_init__(self) -> None:
        if self.input_bytes <= 0:
            raise ValueError("input_bytes must be positive")
        if self.submit_time < 0:
            raise ValueError("submit_time must be non-negative")


@dataclass(frozen=True)
class CompiledPhase:
    """A sized phase: how many parallel vertices, how much data in/out."""

    index: int
    phase_type: PhaseType
    pipelined: bool
    num_vertices: int
    input_bytes: float
    output_bytes: float

    def __post_init__(self) -> None:
        if self.num_vertices < 1:
            raise ValueError("phase needs at least one vertex")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ValueError("phase byte counts must be non-negative")


@dataclass(frozen=True)
class CompiledJob:
    """A compiled job: spec plus the sized phase chain."""

    spec: JobSpec
    phases: tuple[CompiledPhase, ...]

    @property
    def output_bytes(self) -> float:
        """Bytes the final phase writes back to the block store."""
        return self.phases[-1].output_bytes if self.spec.template.writes_output else 0.0


#: The job mix used throughout the reproduction.  Sizes are deliberately
#: one to two orders of magnitude below the production cluster's so that a
#: simulated "day" stays laptop-sized; EXPERIMENTS.md records the scaling.
STANDARD_TEMPLATES: dict[str, JobTemplate] = {
    "interactive": JobTemplate(
        name="interactive",
        phases=(
            PhaseTemplate(PhaseType.EXTRACT, selectivity=0.10),
            PhaseTemplate(PhaseType.AGGREGATE, selectivity=0.05),
        ),
        min_input_bytes=64 * MB,
        max_input_bytes=2 * GB,
        home_scope="rack",
    ),
    "report": JobTemplate(
        name="report",
        phases=(
            PhaseTemplate(PhaseType.EXTRACT, selectivity=0.60),
            PhaseTemplate(PhaseType.PARTITION, selectivity=1.0, pipelined=True),
            PhaseTemplate(PhaseType.AGGREGATE, selectivity=0.25),
        ),
        min_input_bytes=2 * GB,
        max_input_bytes=30 * GB,
        home_scope="rack",
    ),
    "production": JobTemplate(
        name="production",
        phases=(
            PhaseTemplate(PhaseType.EXTRACT, selectivity=0.90),
            PhaseTemplate(PhaseType.PARTITION, selectivity=1.0, pipelined=True),
            PhaseTemplate(PhaseType.AGGREGATE, selectivity=0.50),
            PhaseTemplate(PhaseType.PARTITION, selectivity=1.0, pipelined=True),
            PhaseTemplate(PhaseType.AGGREGATE, selectivity=0.40),
            PhaseTemplate(PhaseType.COMBINE, selectivity=0.50),
        ),
        min_input_bytes=10 * GB,
        max_input_bytes=50 * GB,
        home_scope="vlan",
    ),
}


def compile_job(
    spec: JobSpec,
    block_size: float = 256 * MB,
    target_bucket_bytes: float = 512 * MB,
    max_vertices_per_phase: int = 64,
    max_extract_vertices: int = 512,
) -> CompiledJob:
    """Size a job's phases the way the Scope compiler would.

    * Extract gets one vertex per input block — vertices queue on compute
      slots rather than batching blocks, so each read stays eligible for
      data-local placement (the cap exists only as a runaway guard);
    * a pipelined Partition inherits its upstream phase's vertex count
      (each upstream vertex's output is partitioned where it landed);
    * Aggregate/Combine get one vertex per ``target_bucket_bytes`` of
      phase input (capped), the "set number of buckets" of §3.
    """
    if block_size <= 0 or target_bucket_bytes <= 0:
        raise ValueError("block and bucket sizes must be positive")
    if max_vertices_per_phase < 1 or max_extract_vertices < 1:
        raise ValueError("vertex caps must be >= 1")
    phases: list[CompiledPhase] = []
    incoming = spec.input_bytes
    previous_vertices = 1
    for index, template in enumerate(spec.template.phases):
        outgoing = incoming * template.selectivity
        if template.phase_type == PhaseType.EXTRACT:
            vertices = min(math.ceil(spec.input_bytes / block_size),
                           max_extract_vertices)
        elif template.pipelined:
            vertices = previous_vertices
        else:
            vertices = min(math.ceil(incoming / target_bucket_bytes),
                           max_vertices_per_phase)
        vertices = max(1, vertices)
        phases.append(
            CompiledPhase(
                index=index,
                phase_type=template.phase_type,
                pipelined=template.pipelined,
                num_vertices=vertices,
                input_bytes=incoming,
                output_bytes=outgoing,
            )
        )
        incoming = outgoing
        previous_vertices = vertices
    return CompiledJob(spec=spec, phases=tuple(phases))
