"""Shared fixtures.

The expensive artefact — a simulated measurement campaign — is built once
per session on the small configuration and shared by every analysis and
experiment test.  Unit tests for the substrates build their own tiny
structures instead.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.config import SimulationConfig
from repro.experiments.common import ExperimentDataset, build_dataset, small_config

# Property tests must be deterministic in CI: fixed derivation, no
# wall-clock deadline flakes, a bounded example budget.
settings.register_profile(
    "repro", derandomize=True, deadline=None, max_examples=25
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def tiny_spec() -> ClusterSpec:
    """A 4-rack, 20-server cluster spec for structural tests."""
    return ClusterSpec(racks=4, servers_per_rack=5, racks_per_vlan=2,
                       external_hosts=2)


@pytest.fixture(scope="session")
def tiny_topology(tiny_spec: ClusterSpec) -> ClusterTopology:
    """A built tiny cluster."""
    return ClusterTopology(tiny_spec)


@pytest.fixture(scope="session")
def tiny_router(tiny_topology: ClusterTopology) -> Router:
    """Router over the tiny cluster."""
    return Router(tiny_topology)


@pytest.fixture(scope="session")
def dataset() -> ExperimentDataset:
    """The session-wide small campaign (simulation + derived artefacts)."""
    return build_dataset(small_config())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


def micro_trace_config() -> SimulationConfig:
    """A seconds-scale campaign for trace/validation tests."""
    return SimulationConfig(
        cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=2,
                            external_hosts=1),
        duration=40.0,
        seed=3,
    )


@pytest.fixture(scope="session")
def recorded_trace(tmp_path_factory):
    """One recorded ``.reprotrace`` shared by validation/corruption tests.

    Corruption tests must copy it before mutating.
    """
    from repro.trace.record import record_trace

    path = tmp_path_factory.mktemp("traces") / "micro.reprotrace"
    # A small chunk size forces several chunks, so chunk-boundary and
    # per-chunk corruption paths are genuinely exercised.
    record_trace(micro_trace_config(), path, chunk_size=128)
    return path


@pytest.fixture(scope="session")
def assert_invariants():
    """Run invariant checkers over any artefact; fail with the report.

    Usable by every test module::

        def test_something(dataset, assert_invariants):
            assert_invariants(dataset)

    Returns the :class:`~repro.validate.ValidationReport` so callers can
    make additional per-checker assertions.
    """
    from repro.validate import validate

    def check(source, names=None, tags=None):
        report = validate(source, names=names, tags=tags)
        assert report.ok, f"invariant violations:\n{report.render()}"
        return report

    return check
