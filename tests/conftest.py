"""Shared fixtures.

The expensive artefact — a simulated measurement campaign — is built once
per session on the small configuration and shared by every analysis and
experiment test.  Unit tests for the substrates build their own tiny
structures instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.experiments.common import ExperimentDataset, build_dataset, small_config


@pytest.fixture(scope="session")
def tiny_spec() -> ClusterSpec:
    """A 4-rack, 20-server cluster spec for structural tests."""
    return ClusterSpec(racks=4, servers_per_rack=5, racks_per_vlan=2,
                       external_hosts=2)


@pytest.fixture(scope="session")
def tiny_topology(tiny_spec: ClusterSpec) -> ClusterTopology:
    """A built tiny cluster."""
    return ClusterTopology(tiny_spec)


@pytest.fixture(scope="session")
def tiny_router(tiny_topology: ClusterTopology) -> Router:
    """Router over the tiny cluster."""
    return Router(tiny_topology)


@pytest.fixture(scope="session")
def dataset() -> ExperimentDataset:
    """The session-wide small campaign (simulation + derived artefacts)."""
    return build_dataset(small_config())


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
