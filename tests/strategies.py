"""Hypothesis strategies for the repro domain objects.

Shared across test modules so property tests describe *one* notion of a
valid cluster spec, event log or simulation config.  The generated logs
satisfy the collector's structural guarantees (finalized, time-sorted,
src != dst, both-sided events for completed transfers) without running a
simulation, which keeps property tests fast; checkers that assert
*pipeline* invariants (byte conservation against link loads) are tested
against real simulations instead.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.config import SimulationConfig
from repro.instrumentation.events import (
    DIRECTION_RECV,
    DIRECTION_SEND,
    SocketEventLog,
)
from repro.simulation.cc import CongestionControlConfig
from repro.workload.generator import WorkloadConfig

__all__ = [
    "cc_configs",
    "churn_ops",
    "cluster_specs",
    "event_logs",
    "fabric_specs",
    "fabric_topologies",
    "routing_impls",
    "simulation_configs",
    "topologies",
]


def cc_configs() -> st.SearchStrategy[CongestionControlConfig]:
    """Valid congestion-control parameter sets.

    Built so every draw satisfies ``CongestionControlConfig``'s
    validation: the marking threshold is derived as a fraction of the
    buffer depth and the window bounds are ordered by construction.
    """

    def build(
        tick: float,
        mtu: float,
        capacity: int,
        threshold_fraction: float,
        base_rtt: float,
        initial_cwnd: float,
        max_cwnd: float,
        gain: float,
        min_rto: float,
        loss_fraction: float,
    ) -> CongestionControlConfig:
        threshold = max(1, min(int(capacity * threshold_fraction), capacity))
        return CongestionControlConfig(
            tick=tick,
            mtu_bytes=mtu,
            queue_capacity_packets=capacity,
            ecn_threshold_packets=threshold,
            base_rtt=base_rtt,
            initial_cwnd_packets=initial_cwnd,
            min_cwnd_packets=1.0,
            max_cwnd_packets=max_cwnd,
            dctcp_gain=gain,
            min_rto=min_rto,
            timeout_loss_fraction=loss_fraction,
        )

    return st.builds(
        build,
        tick=st.floats(min_value=1e-4, max_value=2e-3),
        mtu=st.sampled_from([576.0, 1500.0, 9000.0]),
        capacity=st.integers(min_value=4, max_value=256),
        threshold_fraction=st.floats(min_value=0.05, max_value=1.0),
        base_rtt=st.floats(min_value=5e-4, max_value=1e-2),
        initial_cwnd=st.floats(min_value=1.0, max_value=10.0),
        max_cwnd=st.floats(min_value=64.0, max_value=2048.0),
        gain=st.floats(min_value=0.01, max_value=1.0),
        min_rto=st.floats(min_value=0.01, max_value=1.0),
        loss_fraction=st.floats(min_value=0.1, max_value=1.0),
    )


def churn_ops(max_ops: int = 40) -> st.SearchStrategy[list[tuple]]:
    """Random flow arrival/departure interleavings.

    Each op is ``("add", src_pick, dst_pick)`` or ``("finish", pick)``;
    the integer picks are resolved modulo the live endpoint/flow
    population by the consuming test, so every generated sequence is
    applicable to any topology regardless of size.  Used to drive the
    incremental allocator against the reference solver step by step.
    """
    add = st.tuples(
        st.just("add"),
        st.integers(min_value=0, max_value=2**16),
        st.integers(min_value=0, max_value=2**16),
    )
    finish = st.tuples(st.just("finish"), st.integers(min_value=0, max_value=2**16))
    return st.lists(st.one_of(add, finish), min_size=1, max_size=max_ops)


def cluster_specs(max_racks: int = 4) -> st.SearchStrategy[ClusterSpec]:
    """Small but structurally diverse cluster specs."""

    def build(racks: int, servers: int, per_vlan: int, external: int):
        return ClusterSpec(
            racks=racks,
            servers_per_rack=servers,
            racks_per_vlan=min(per_vlan, racks),
            external_hosts=external,
        )

    return st.builds(
        build,
        racks=st.integers(min_value=2, max_value=max_racks),
        servers=st.integers(min_value=2, max_value=4),
        per_vlan=st.integers(min_value=1, max_value=2),
        external=st.integers(min_value=0, max_value=2),
    )


def topologies(max_racks: int = 4) -> st.SearchStrategy[ClusterTopology]:
    """Built topologies over :func:`cluster_specs`."""
    return cluster_specs(max_racks).map(ClusterTopology)


def fabric_specs() -> st.SearchStrategy[ClusterSpec]:
    """Specs over the whole topology family (tree, fat-tree, leaf-spine).

    Small enough that path enumeration stays cheap, diverse enough to
    cover every fabric's structural cases: single/multiple pods, one or
    several spines, with and without external hosts.
    """
    fat_tree = st.builds(
        lambda k, servers, external: ClusterSpec.fat_tree(
            k=k, servers_per_rack=servers, external_hosts=external,
        ),
        k=st.sampled_from([2, 4]),
        servers=st.integers(min_value=2, max_value=3),
        external=st.integers(min_value=0, max_value=2),
    )
    leaf_spine = st.builds(
        lambda racks, spines, servers, external: ClusterSpec.leaf_spine(
            racks=racks, spines=spines, servers_per_rack=servers,
            external_hosts=external,
        ),
        racks=st.integers(min_value=2, max_value=4),
        spines=st.integers(min_value=1, max_value=3),
        servers=st.integers(min_value=2, max_value=3),
        external=st.integers(min_value=0, max_value=2),
    )
    return st.one_of(cluster_specs(max_racks=4), fat_tree, leaf_spine)


def fabric_topologies() -> st.SearchStrategy[ClusterTopology]:
    """Built topologies over :func:`fabric_specs`."""
    return fabric_specs().map(ClusterTopology)


def routing_impls() -> st.SearchStrategy[str]:
    """One of the registered per-flow routing implementations."""
    from repro.cluster.routing import ROUTING_IMPLS

    return st.sampled_from(ROUTING_IMPLS)


@st.composite
def event_logs(
    draw,
    topology: ClusterTopology | None = None,
    max_transfers: int = 20,
    duration: float = 100.0,
) -> SocketEventLog:
    """A finalized, time-sorted log of completed internal transfers.

    Each transfer emits 1–4 send events at its source and the matching
    receive events at its destination, with identical per-event byte
    splits — the collector's shape for a completed transfer.
    """
    if topology is None:
        topology = draw(topologies())
    servers = topology.num_servers
    log = SocketEventLog()
    num_transfers = draw(st.integers(min_value=0, max_value=max_transfers))
    for _ in range(num_transfers):
        src = draw(st.integers(min_value=0, max_value=servers - 1))
        dst = draw(
            st.integers(min_value=0, max_value=servers - 2).map(
                lambda n, src=src: n if n < src else n + 1
            )
        )
        size = draw(st.floats(min_value=1.0, max_value=1e8))
        start = draw(st.floats(min_value=0.0, max_value=duration * 0.9))
        span = draw(st.floats(min_value=0.0, max_value=duration - start))
        count = draw(st.integers(min_value=1, max_value=4))
        src_port = draw(st.integers(min_value=1024, max_value=65535))
        dst_port = draw(st.integers(min_value=1, max_value=1023))
        job_id = draw(st.integers(min_value=0, max_value=5))
        phase = draw(st.integers(min_value=0, max_value=2))
        times = np.linspace(start, start + span, count)
        per_event = size / count
        for timestamp in times:
            for direction, server in (
                (DIRECTION_SEND, src),
                (DIRECTION_RECV, dst),
            ):
                log.append(
                    timestamp=float(timestamp),
                    server=server,
                    direction=direction,
                    src=src,
                    src_port=src_port,
                    dst=dst,
                    dst_port=dst_port,
                    protocol=0,
                    num_bytes=per_event,
                    job_id=job_id,
                    phase_index=phase,
                )
    log.finalize()
    return log


def simulation_configs(max_racks: int = 3) -> st.SearchStrategy[SimulationConfig]:
    """Tiny full campaign configs (seconds to simulate, not minutes)."""

    def build(spec: ClusterSpec, duration: float, seed: int, rate: float):
        return SimulationConfig(
            cluster=spec,
            workload=WorkloadConfig(job_arrival_rate=rate),
            duration=duration,
            seed=seed,
        )

    return st.builds(
        build,
        spec=cluster_specs(max_racks),
        duration=st.floats(min_value=5.0, max_value=30.0),
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.05, max_value=0.5),
    )
