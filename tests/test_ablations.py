"""Ablation experiments (A1-A3).

A1/A2 run two full (small) campaigns each, so they are the slowest tests
in the suite; A3 is synthetic and fast.
"""

import pytest

from repro.experiments.ablations import (
    run_connection_cap_ablation,
    run_gravity_regime_ablation,
    run_locality_ablation,
)


@pytest.mark.slow
class TestLocalityAblation:
    def test_locality_preference_creates_the_pattern(self):
        result = run_locality_ablation(seed=21)
        assert result.in_rack_with_locality > result.in_rack_without_locality
        assert result.locality_gain > 1.1
        assert result.local_placements_with > 0.7
        assert result.local_placements_without < 0.5
        rows = result.rows()
        assert len(rows) == 5


@pytest.mark.slow
class TestConnectionCapAblation:
    def test_cap_creates_modes_and_bounds_fan_in(self):
        result = run_connection_cap_ablation(seed=22)
        assert result.modes_with_cap > result.modes_without_cap
        assert result.peak_fan_in_without_cap > result.peak_fan_in_with_cap


class TestGravityRegimeAblation:
    def test_gravity_prior_fits_isp_not_dc(self):
        result = run_gravity_regime_ablation(trials=8, seed=23)
        assert result.median_isp_error < 0.1
        assert result.median_dc_error > 0.2
        assert result.median_dc_error > 5 * result.median_isp_error

    def test_rows_render(self):
        result = run_gravity_regime_ablation(trials=4, seed=24)
        assert len(result.rows()) == 2
