"""Allocator edge cases across every ``transport_impl``, plus the
add/finish interleaving property test.

The four water-filling implementations share one contract: no link is
ever oversubscribed, and rates agree with the round-based reference —
bitwise for the exact impls, within ``INCREMENTAL_RTOL`` for the
incremental allocator.  The edge cases here are the shapes a campaign
hits rarely but fatally: zero-capacity links, a path saturated end to
end, arrivals and departures folded into one batch, and the active set
draining to empty.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.simulation.waterfill import (
    INCREMENTAL_RTOL,
    IncrementalMaxMin,
    maxmin_rates_reference,
    maxmin_rates_vectorized,
)

from strategies import churn_ops

IMPLS = ["reference", "vectorized", "csr", "incremental"]

#: Equivalence bound per impl: the exact impls must be bitwise-tight,
#: the incremental allocator is tolerance-based by design.
RTOL = {impl: 1e-9 for impl in ("reference", "vectorized", "csr")}
RTOL["incremental"] = INCREMENTAL_RTOL


def _paths_array(flows, width: int | None = None):
    """Padded (paths, valid) arrays from a list of link tuples."""
    width = width or max((len(links) for links in flows), default=1)
    paths = np.full((len(flows), max(width, 1)), -1, dtype=np.int64)
    for row, links in enumerate(flows):
        paths[row, : len(links)] = links
    return paths, paths >= 0


def _solve(impl: str, flows, capacities: np.ndarray) -> np.ndarray:
    """One-shot solve of ``flows`` (list of link tuples) under ``impl``."""
    num_links = capacities.size
    paths, valid = _paths_array(flows)
    if impl == "reference":
        return maxmin_rates_reference(paths, valid, capacities, num_links)
    if impl in ("vectorized", "csr"):
        return maxmin_rates_vectorized(
            paths, valid, capacities, num_links,
            regime="csr" if impl == "csr" else "auto",
        )
    inc = IncrementalMaxMin(capacities, num_links)
    for slot, links in enumerate(flows):
        inc.on_add(slot, tuple(links))
    return inc.solve(np.arange(len(flows), dtype=np.int64), paths, valid)


def _assert_feasible(flows, rates, capacities):
    """No link carries more than its capacity (float slack only)."""
    paths, valid = _paths_array(flows)
    consumed = np.bincount(
        paths[valid],
        weights=np.repeat(rates, valid.sum(axis=1)),
        minlength=capacities.size,
    )
    assert (consumed <= capacities * (1.0 + 1e-6) + 1e-9).all()


@pytest.mark.parametrize("impl", IMPLS)
def test_zero_capacity_link_starves_only_its_flows(impl):
    """Flows crossing a dead link get rate zero; everyone else shares
    the live links as if the dead flows were absent."""
    capacities = np.array([100.0, 0.0, 100.0])
    flows = [(0,), (1,), (0, 2), (1, 2)]
    rates = _solve(impl, flows, capacities)
    assert rates[1] == 0.0
    assert rates[3] == 0.0
    ref = _solve("reference", flows, capacities)
    np.testing.assert_allclose(rates, ref, rtol=RTOL[impl], atol=1e-9)
    _assert_feasible(flows, rates, capacities)


@pytest.mark.parametrize("impl", IMPLS)
def test_fully_saturated_path_splits_the_bottleneck(impl):
    """Identical flows over one end-to-end path split its tightest link
    equally and leave the wider links unsaturated."""
    capacities = np.array([50.0, 10.0, 50.0])
    flows = [(0, 1, 2)] * 5
    rates = _solve(impl, flows, capacities)
    np.testing.assert_allclose(rates, 2.0, rtol=RTOL[impl])
    _assert_feasible(flows, rates, capacities)


@pytest.mark.parametrize("impl", IMPLS)
def test_simultaneous_arrival_and_departure_batch(impl):
    """Departures and arrivals folded into one rate recomputation.

    The incremental allocator sees them as queued ``on_remove`` and
    ``on_add`` events absorbed by a single ``solve``; the stateless
    impls simply solve the final set.  Both must land on the reference
    allocation of the final set.
    """
    capacities = np.array([100.0, 100.0, 100.0, 100.0])
    first = [(0, 1), (1, 2), (2, 3)]
    final = [(0, 1), (0, 3), (1, 3)]
    if impl == "incremental":
        inc = IncrementalMaxMin(capacities, capacities.size)
        for slot, links in enumerate(first):
            inc.on_add(slot, links)
        paths, valid = _paths_array(first)
        inc.solve(np.arange(3, dtype=np.int64), paths, valid)
        # One batch: two departures and two arrivals, then one solve.
        inc.on_remove(1)
        inc.on_remove(2)
        inc.on_add(3, (0, 3))
        inc.on_add(4, (1, 3))
        paths, valid = _paths_array(final)
        rates = inc.solve(np.array([0, 3, 4], dtype=np.int64), paths, valid)
    else:
        rates = _solve(impl, final, capacities)
    ref = _solve("reference", final, capacities)
    np.testing.assert_allclose(rates, ref, rtol=RTOL[impl], atol=1e-9)
    _assert_feasible(final, rates, capacities)


@pytest.mark.parametrize("impl", IMPLS)
def test_empty_active_set_after_mass_completion(impl):
    """Draining every flow yields an empty solve; the next arrival gets
    the full link back."""
    capacities = np.array([100.0])
    if impl == "incremental":
        inc = IncrementalMaxMin(capacities, 1)
        inc.on_add(0, (0,))
        inc.on_add(1, (0,))
        paths, valid = _paths_array([(0,), (0,)])
        inc.solve(np.array([0, 1], dtype=np.int64), paths, valid)
        inc.on_remove(0)
        inc.on_remove(1)
        empty = inc.solve(
            np.empty(0, dtype=np.int64),
            np.empty((0, 1), dtype=np.int64),
            np.empty((0, 1), dtype=bool),
        )
        assert empty.size == 0
        # Recovery: a fresh arrival is granted the freed capacity.
        inc.on_add(2, (0,))
        paths, valid = _paths_array([(0,)])
        rates = inc.solve(np.array([2], dtype=np.int64), paths, valid)
        np.testing.assert_allclose(rates, [100.0], rtol=INCREMENTAL_RTOL)
    else:
        empty = _solve(impl, [], capacities)
        assert empty.size == 0


# ------------------------------------------------------- property test


@settings(max_examples=40, deadline=None)
@given(ops=churn_ops())
def test_incremental_tracks_reference_over_interleavings(ops):
    """Any add/finish interleaving stays within ``INCREMENTAL_RTOL``.

    Drives the stateful incremental allocator through a random arrival/
    departure sequence on a real routed topology and, after *every*
    step, compares its live rates against a from-scratch reference
    solve of the same flow set — the exact bound the
    ``transport.incremental_equivalence`` checker enforces inline — and
    re-checks link feasibility.
    """
    topo = ClusterTopology(
        ClusterSpec(racks=4, servers_per_rack=3, racks_per_vlan=2,
                    external_hosts=0)
    )
    router = Router(topo)
    capacities = topo.capacities
    num_links = topo.num_links
    endpoints = topo.endpoints()
    inc = IncrementalMaxMin(capacities, num_links)
    active: dict[int, tuple[int, ...]] = {}
    next_slot = 0

    for op in ops:
        if op[0] == "add":
            src = endpoints[op[1] % len(endpoints)]
            others = [e for e in endpoints if e != src]
            dst = others[op[2] % len(others)]
            links = tuple(
                int(link) for link in router.path_links(int(src), int(dst))
            )
            inc.on_add(next_slot, links)
            active[next_slot] = links
            next_slot += 1
        else:
            if not active:
                continue
            slots = sorted(active)
            slot = slots[op[1] % len(slots)]
            inc.on_remove(slot)
            del active[slot]

        slots = np.array(sorted(active), dtype=np.int64)
        flows = [active[int(slot)] for slot in slots]
        paths, valid = _paths_array(flows, width=8)
        rates = inc.solve(slots, paths, valid)
        if slots.size == 0:
            assert rates.size == 0
            continue
        ref = maxmin_rates_reference(paths, valid, capacities, num_links)
        err = np.abs(rates - ref) / np.maximum(np.abs(ref), 1.0)
        assert float(err.max()) <= INCREMENTAL_RTOL + 1e-9
        _assert_feasible(flows, rates, capacities)
