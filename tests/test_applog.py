"""Application log records and queries."""

from repro.instrumentation.applog import ApplicationLog


def populated_log() -> ApplicationLog:
    log = ApplicationLog()
    log.record_job_start(0, "job-a", "interactive", 1.0)
    log.record_phase_start(0, 0, "extract", 1.0)
    log.record_vertex_start(10, 0, 0, server=3, locality="LOCAL", time=1.1)
    log.record_vertex_end(10, 0, 0, time=2.0, read_failures=0, remote_bytes=0.0)
    log.record_phase_end(0, 0, 2.0)
    log.record_job_end(0, "succeeded", 2.5, read_failures=0)

    log.record_job_start(1, "job-b", "report", 3.0)
    log.record_vertex_start(11, 1, 0, server=4, locality="RACK", time=3.1)
    log.record_read_failure(1, 11, src=5, dst=4, time=3.5)
    log.record_job_end(1, "killed_read_failure", 4.0, read_failures=1)
    log.record_evacuation(server=7, time=5.0, blocks_moved=12)
    return log


class TestQueries:
    def test_jobs_seen_in_order(self):
        assert populated_log().jobs_seen() == [0, 1]

    def test_job_outcomes(self):
        log = populated_log()
        assert log.job_outcome(0) == "succeeded"
        assert log.job_outcome(1) == "killed_read_failure"
        assert log.job_outcome(99) is None

    def test_job_interval(self):
        log = populated_log()
        assert log.job_interval(0) == (1.0, 2.5)
        assert log.job_interval(99) is None

    def test_job_interval_falls_back_to_vertex_end(self):
        log = ApplicationLog()
        log.record_job_start(5, "j", "report", 1.0)
        log.record_vertex_end(20, 5, 0, time=9.0, read_failures=0, remote_bytes=0.0)
        assert log.job_interval(5) == (1.0, 9.0)

    def test_jobs_with_read_failures(self):
        assert populated_log().jobs_with_read_failures() == {1}

    def test_servers_by_job(self):
        placements = populated_log().servers_by_job()
        assert placements == {0: {3}, 1: {4}}

    def test_phase_type_lookup(self):
        log = populated_log()
        assert log.phase_type_of(0, 0) == "extract"
        assert log.phase_type_of(0, 5) is None

    def test_evacuations_recorded(self):
        log = populated_log()
        assert log.evacuations[0].server == 7
        assert log.evacuations[0].blocks_moved == 12


class TestIndexedQueries:
    """The O(1) indexes must agree with scan semantics under interleaving."""

    def test_queries_correct_after_interleaved_records(self):
        log = ApplicationLog()
        # Records from three jobs arrive interleaved, as they do when
        # campaigns overlap: starts, vertex ends, terminal states and
        # phase starts in mixed order.
        log.record_job_start(0, "a", "interactive", 1.0)
        log.record_job_start(1, "b", "report", 1.5)
        log.record_phase_start(1, 0, "extract", 1.6)
        log.record_vertex_end(100, 0, 0, time=4.0, read_failures=0,
                              remote_bytes=0.0)
        log.record_phase_start(0, 0, "extract", 1.1)
        log.record_job_end(1, "killed_read_failure", 5.0, read_failures=6)
        log.record_vertex_end(101, 0, 0, time=3.0, read_failures=0,
                              remote_bytes=0.0)
        log.record_job_start(2, "c", "daily", 6.0)
        log.record_phase_start(0, 1, "aggregate", 4.5)
        log.record_job_end(0, "succeeded", 7.0, read_failures=0)

        assert log.job_outcome(0) == "succeeded"
        assert log.job_outcome(1) == "killed_read_failure"
        assert log.job_outcome(2) is None
        assert log.job_outcome(9) is None
        assert log.job_interval(0) == (1.0, 7.0)
        assert log.job_interval(1) == (1.5, 5.0)
        # Job 2 never ended and has no vertex ends: interval collapses.
        assert log.job_interval(2) == (6.0, 6.0)
        assert log.phase_type_of(0, 0) == "extract"
        assert log.phase_type_of(0, 1) == "aggregate"
        assert log.phase_type_of(1, 0) == "extract"
        assert log.phase_type_of(2, 0) is None

    def test_interval_fallback_tracks_latest_vertex_end(self):
        log = ApplicationLog()
        log.record_job_start(3, "j", "report", 1.0)
        log.record_vertex_end(1, 3, 0, time=9.0, read_failures=0,
                              remote_bytes=0.0)
        log.record_vertex_end(2, 3, 0, time=4.0, read_failures=0,
                              remote_bytes=0.0)
        # Out-of-order vertex ends: the max, not the last, wins.
        assert log.job_interval(3) == (1.0, 9.0)
        log.record_job_end(3, "succeeded", 11.0, read_failures=0)
        assert log.job_interval(3) == (1.0, 11.0)

    def test_first_record_wins_on_duplicates(self):
        log = ApplicationLog()
        log.record_job_start(4, "j", "report", 2.0)
        log.record_job_end(4, "succeeded", 5.0, read_failures=0)
        log.record_job_end(4, "killed_read_failure", 6.0, read_failures=1)
        assert log.job_outcome(4) == "succeeded"
        assert log.job_interval(4) == (2.0, 5.0)

    def test_indexes_rebuilt_from_constructor_records(self):
        source = populated_log()
        restored = ApplicationLog(
            job_starts=list(source.job_starts),
            job_ends=list(source.job_ends),
            phase_starts=list(source.phase_starts),
            phase_ends=list(source.phase_ends),
            vertex_starts=list(source.vertex_starts),
            vertex_ends=list(source.vertex_ends),
            read_failures=list(source.read_failures),
            evacuations=list(source.evacuations),
        )
        assert restored.job_outcome(0) == "succeeded"
        assert restored.job_interval(1) == (3.0, 4.0)
        assert restored.phase_type_of(0, 0) == "extract"
