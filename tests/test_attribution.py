"""Traffic attribution to applications (§4.2)."""

import numpy as np
import pytest

from repro.core.attribution import attribute_traffic, kind_of_flows
from repro.core.flows import FlowTable
from repro.instrumentation.applog import ApplicationLog
from repro.instrumentation.collector import SERVICE_PORTS


def make_flows(rows):
    """rows: (src, dst, start, end, bytes, job, phase, src_port)."""
    n = len(rows)
    cols = list(zip(*rows)) if rows else [[]] * 8
    return FlowTable(
        src=np.array(cols[0], dtype=np.int64),
        src_port=np.array(cols[7], dtype=np.int64),
        dst=np.array(cols[1], dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=np.array(cols[2], dtype=float),
        end_time=np.array(cols[3], dtype=float),
        num_bytes=np.array(cols[4], dtype=float),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.array(cols[5], dtype=np.int64),
        phase_index=np.array(cols[6], dtype=np.int64),
    )


class TestKinds:
    def test_kind_recovery(self):
        flows = make_flows([
            (0, 1, 0, 1, 10.0, 0, 0, SERVICE_PORTS["fetch"]),
            (0, 1, 0, 1, 10.0, 0, 0, SERVICE_PORTS["evacuation"]),
            (0, 1, 0, 1, 10.0, 0, 0, 1234),
        ])
        assert kind_of_flows(flows) == ["fetch", "evacuation", "unknown"]


class TestAttribution:
    def test_phase_merge_uses_applog(self, tiny_topology, tiny_router):
        applog = ApplicationLog()
        applog.record_phase_start(0, 0, "extract", 0.0)
        applog.record_phase_start(0, 2, "aggregate", 5.0)
        flows = make_flows([
            (0, 1, 0, 1, 100.0, 0, 0, SERVICE_PORTS["fetch"]),
            (0, 1, 2, 3, 300.0, 0, 2, SERVICE_PORTS["fetch"]),
            (0, 1, 2, 3, 50.0, 0, 9, SERVICE_PORTS["fetch"]),  # unlogged phase
        ])
        util = np.zeros((tiny_topology.num_links, 10))
        report = attribute_traffic(flows, applog, tiny_router, util)
        assert report.bytes_by_phase_type["extract"] == 100.0
        assert report.bytes_by_phase_type["aggregate"] == 300.0
        assert report.bytes_by_phase_type["unknown-phase"] == 50.0

    def test_kind_totals(self, tiny_topology, tiny_router):
        applog = ApplicationLog()
        flows = make_flows([
            (0, 1, 0, 1, 100.0, -1, -1, SERVICE_PORTS["evacuation"]),
            (0, 1, 0, 1, 40.0, -1, -1, SERVICE_PORTS["replication"]),
        ])
        util = np.zeros((tiny_topology.num_links, 10))
        report = attribute_traffic(flows, applog, tiny_router, util)
        assert report.bytes_by_kind == {"evacuation": 100.0, "replication": 40.0}
        assert report.share(report.bytes_by_kind, "evacuation") == pytest.approx(100 / 140)

    def test_hot_attribution_restricted_to_overlap(self, tiny_topology, tiny_router):
        applog = ApplicationLog()
        applog.record_phase_start(0, 0, "extract", 0.0)
        util = np.zeros((tiny_topology.num_links, 10))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 0] = 0.99
        flows = make_flows([
            (0, 1, 0, 1, 100.0, 0, 0, SERVICE_PORTS["fetch"]),   # hot
            (2, 3, 0, 1, 900.0, 0, 0, SERVICE_PORTS["fetch"]),   # cold path
        ])
        report = attribute_traffic(flows, applog, tiny_router, util)
        assert report.hot_bytes_by_phase_type == {"extract": 100.0}

    def test_top_hot_contributors(self, tiny_topology, tiny_router):
        applog = ApplicationLog()
        applog.record_phase_start(0, 1, "aggregate", 0.0)
        util = np.zeros((tiny_topology.num_links, 10))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 0] = 0.99
        flows = make_flows([
            (0, 1, 0, 1, 500.0, 0, 1, SERVICE_PORTS["fetch"]),
            (0, 1, 0, 1, 300.0, -1, -1, SERVICE_PORTS["evacuation"]),
        ])
        report = attribute_traffic(flows, applog, tiny_router, util)
        top = report.top_hot_contributors(2)
        assert top[0] == ("aggregate", 500.0)
        assert top[1] == ("evacuation", 300.0)
