"""The perf-regression harness: timing, results files, comparison, CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_results, format_table
from repro.bench.results import (
    BenchResult,
    host_metadata,
    load_results,
    write_results,
)
from repro.bench.timing import measure
from repro.cli import main


class TestMeasure:
    def test_returns_result_and_counts_calls(self):
        calls = []

        def fn(value):
            calls.append(value)
            return value * 2

        result, timing = measure(fn, 21, rounds=3, iterations=2, warmup=1)
        assert result == 42
        assert len(calls) == 1 + 3 * 2
        assert timing.rounds == 3
        assert timing.iterations == 2

    def test_best_is_minimum_of_rounds(self):
        result, timing = measure(lambda: None, rounds=5)
        assert timing.best <= timing.mean <= timing.worst
        assert timing.total > 0

    def test_kwargs_forwarded(self):
        result, _ = measure(lambda a, b=0: a + b, 1, b=2, rounds=1, warmup=0)
        assert result == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            measure(lambda: None, rounds=0)
        with pytest.raises(ValueError):
            measure(lambda: None, iterations=0)
        with pytest.raises(ValueError):
            measure(lambda: None, warmup=-1)


class TestResultsFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        write_results(path, [
            BenchResult(id="b::one", wall_seconds=0.5, mean_seconds=0.6,
                        rounds=3, iterations=1),
            BenchResult(id="b::two", wall_seconds=1.5),
        ])
        loaded = load_results(path)
        assert set(loaded) == {"b::one", "b::two"}
        assert loaded["b::one"].wall_seconds == 0.5
        assert loaded["b::one"].rounds == 3
        assert loaded["b::two"].mean_seconds is None

    def test_host_metadata_recorded(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        payload = write_results(path, [])
        for key in ("platform", "python", "numpy", "cpu_count", "timestamp"):
            assert key in payload["host"]
        assert json.loads(path.read_text())["schema_version"] == 2

    def test_schema_v1_loads(self, tmp_path):
        """Historical committed baselines (schema 1) stay comparable."""
        path = tmp_path / "BENCH_v1.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "benchmarks": [{"id": "b::old", "wall_seconds": 2.0}],
        }))
        loaded = load_results(path)
        assert loaded["b::old"].wall_seconds == 2.0

    def test_non_bench_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("{}")
        with pytest.raises(ValueError, match="benchmarks"):
            load_results(path)

    def test_host_metadata_standalone(self):
        meta = host_metadata()
        assert meta["cpu_count"] >= 1


class TestCompare:
    def _results(self, **wall):
        return {
            name: BenchResult(id=name, wall_seconds=seconds)
            for name, seconds in wall.items()
        }

    def test_statuses(self):
        rows = compare_results(
            self._results(a=1.0, b=1.0, c=1.0, gone=1.0),
            self._results(a=1.05, b=2.0, c=0.4, fresh=1.0),
            tolerance=0.25,
        )
        by_id = {row.id: row for row in rows}
        assert by_id["a"].status == "ok"
        assert by_id["b"].status == "regression"
        assert by_id["b"].ratio == pytest.approx(2.0)
        assert by_id["c"].status == "improved"
        assert by_id["fresh"].status == "new"
        assert by_id["gone"].status == "missing"

    def test_regressions_sort_first(self):
        rows = compare_results(
            self._results(z=1.0, a=1.0), self._results(z=5.0, a=1.0)
        )
        assert rows[0].id == "z"

    def test_zero_baseline_counts_as_regression(self):
        rows = compare_results(self._results(a=0.0), self._results(a=1.0))
        assert rows[0].status == "regression"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_results({}, {}, tolerance=-0.1)

    def test_table_formatting(self):
        rows = compare_results(
            self._results(a=1.0, b=0.0001), self._results(a=1.6, b=0.0001)
        )
        table = format_table(rows, tolerance=0.25)
        assert "regression" in table
        assert "+60.0%" in table
        assert "100.0µs" in table
        assert "1 regression(s)" in table

    def test_paths_accepted(self, tmp_path):
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        write_results(base, [BenchResult(id="x", wall_seconds=1.0)])
        write_results(cur, [BenchResult(id="x", wall_seconds=1.1)])
        rows = compare_results(base, cur)
        assert rows[0].status == "ok"


class TestBenchCli:
    def _write(self, path, wall):
        write_results(path, [BenchResult(id="b::t", wall_seconds=wall)])

    def test_compare_ok_exit_zero(self, tmp_path, capsys):
        base, cur = tmp_path / "b.json", tmp_path / "c.json"
        self._write(base, 1.0)
        self._write(cur, 1.1)
        code = main(["bench", "compare", "--baseline", str(base),
                     "--current", str(cur)])
        assert code == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_compare_regression_gates_only_with_flag(self, tmp_path, capsys):
        base, cur = tmp_path / "b.json", tmp_path / "c.json"
        self._write(base, 1.0)
        self._write(cur, 3.0)
        assert main(["bench", "compare", "--baseline", str(base),
                     "--current", str(cur)]) == 0
        assert main(["bench", "compare", "--baseline", str(base),
                     "--current", str(cur), "--fail-on-regression"]) == 1
        out = capsys.readouterr().out
        assert "regression" in out

    def test_compare_tolerance_flag(self, tmp_path):
        base, cur = tmp_path / "b.json", tmp_path / "c.json"
        self._write(base, 1.0)
        self._write(cur, 1.4)
        assert main(["bench", "compare", "--baseline", str(base),
                     "--current", str(cur), "--tolerance", "0.5",
                     "--fail-on-regression"]) == 0
        assert main(["bench", "compare", "--baseline", str(base),
                     "--current", str(cur), "--tolerance", "0.1",
                     "--fail-on-regression"]) == 1

    def test_compare_missing_file_exit_two(self, tmp_path, capsys):
        code = main(["bench", "compare",
                     "--baseline", str(tmp_path / "nope.json"),
                     "--current", str(tmp_path / "nope2.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_run_missing_benchmarks_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["bench", "run", "--benchmarks-dir",
                  str(tmp_path / "missing"), "--out",
                  str(tmp_path / "out.json")])
