"""Cosmos-like block store: placement, datasets, evacuation."""

import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.workload.blockstore import Block, BlockStore
from repro.util.units import MB


@pytest.fixture()
def store(tiny_topology, rng):
    return BlockStore(tiny_topology, rng=rng)


class TestBlock:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            Block(block_id=0, dataset_id=0, size=0, replicas=(0,))

    def test_rejects_duplicate_replicas(self):
        with pytest.raises(ValueError):
            Block(block_id=0, dataset_id=0, size=1, replicas=(0, 0))

    def test_rejects_empty_replicas(self):
        with pytest.raises(ValueError):
            Block(block_id=0, dataset_id=0, size=1, replicas=())


class TestPlacement:
    def test_replica_count(self, store):
        replicas = store.choose_replicas(writer=0)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3

    def test_writer_is_first_replica(self, store):
        assert store.choose_replicas(writer=7)[0] == 7

    def test_second_replica_same_rack(self, store, tiny_topology):
        for writer in range(tiny_topology.num_servers):
            replicas = store.choose_replicas(writer=writer)
            assert tiny_topology.rack_of(replicas[1]) == tiny_topology.rack_of(writer)

    def test_third_replica_remote_rack(self, store, tiny_topology):
        for writer in range(tiny_topology.num_servers):
            replicas = store.choose_replicas(writer=writer)
            assert tiny_topology.rack_of(replicas[2]) != tiny_topology.rack_of(writer)

    def test_rejects_external_writer(self, store, tiny_topology):
        with pytest.raises(ValueError):
            store.choose_replicas(writer=tiny_topology.num_servers)

    def test_replication_factor_capped(self, rng):
        topo = ClusterTopology(ClusterSpec(racks=1, servers_per_rack=2,
                                           racks_per_vlan=1, external_hosts=0))
        store = BlockStore(topo, rng=rng, replication_factor=5)
        assert store.replication_factor == 2


class TestDatasets:
    def test_block_count(self, store):
        dataset = store.create_dataset("d", total_bytes=1000 * MB, block_size=256 * MB)
        assert dataset.num_blocks == 4
        assert dataset.total_bytes == pytest.approx(1000 * MB)

    def test_last_block_is_remainder(self, store):
        dataset = store.create_dataset("d", total_bytes=300 * MB, block_size=256 * MB)
        sizes = sorted(block.size for block in dataset.blocks)
        assert sizes == [pytest.approx(44 * MB), pytest.approx(256 * MB)]

    def test_home_bias_concentrates(self, tiny_topology, rng):
        store = BlockStore(tiny_topology, rng=rng)
        home = list(tiny_topology.servers_in_rack(0))
        dataset = store.create_dataset(
            "d", total_bytes=5000 * MB, block_size=100 * MB,
            home_servers=home, home_bias=1.0,
        )
        anchors = [block.replicas[0] for block in dataset.blocks]
        assert all(anchor in home for anchor in anchors)

    def test_home_bias_requires_servers(self, store):
        with pytest.raises(ValueError):
            store.create_dataset("d", total_bytes=1, block_size=1, home_bias=0.5)

    def test_rejects_empty_dataset(self, store):
        with pytest.raises(ValueError):
            store.create_dataset("d", total_bytes=0, block_size=1)

    def test_lookup_by_id(self, store):
        dataset = store.create_dataset("d", total_bytes=10, block_size=10)
        assert store.dataset(dataset.dataset_id) is dataset
        block = dataset.blocks[0]
        assert store.block(block.block_id) == block

    def test_blocks_on_server_tracks_replicas(self, store, tiny_topology):
        dataset = store.create_dataset("d", total_bytes=10, block_size=10, writer=0)
        block = dataset.blocks[0]
        for server in block.replicas:
            assert block in store.blocks_on(server)
        assert store.bytes_on(block.replicas[0]) == pytest.approx(10)


class TestEvacuation:
    def test_source_is_evacuated_server(self, store):
        store.create_dataset("d", total_bytes=1000 * MB, block_size=100 * MB, writer=3)
        transfers = store.evacuate(3)
        assert transfers
        assert all(source == 3 for _, source, _ in transfers)

    def test_server_is_empty_after(self, store):
        store.create_dataset("d", total_bytes=1000 * MB, block_size=100 * MB, writer=3)
        store.evacuate(3)
        assert store.blocks_on(3) == []
        assert store.bytes_on(3) == 0

    def test_replica_count_preserved(self, store):
        dataset = store.create_dataset("d", total_bytes=500 * MB, block_size=100 * MB,
                                       writer=3)
        store.evacuate(3)
        for block in dataset.blocks:
            fresh = store.block(block.block_id)
            assert len(fresh.replicas) == 3
            assert 3 not in fresh.replicas

    def test_new_replica_prefers_unused_rack(self, store, tiny_topology):
        store.create_dataset("d", total_bytes=100 * MB, block_size=100 * MB, writer=0)
        transfers = store.evacuate(0)
        for block, _source, destination in transfers:
            survivors = [r for r in block.replicas if r != destination]
            survivor_racks = {tiny_topology.rack_of(s) for s in survivors}
            # tiny topology has 4 racks and survivors cover at most 2
            assert tiny_topology.rack_of(destination) not in survivor_racks

    def test_empty_server_noop(self, store):
        assert store.evacuate(0) == []

    def test_total_bytes_preserved(self, store, tiny_topology):
        store.create_dataset("d", total_bytes=700 * MB, block_size=100 * MB, writer=1)
        before = sum(store.bytes_on(s) for s in range(tiny_topology.num_servers))
        store.evacuate(1)
        after = sum(store.bytes_on(s) for s in range(tiny_topology.num_servers))
        assert after == pytest.approx(before)
