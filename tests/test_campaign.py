"""Multi-seed campaign runner: determinism, parallelism, aggregation."""

from __future__ import annotations

import json
import math

import pytest

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig
from repro.experiments.campaign import (
    SeedRun,
    aggregate_summaries,
    campaign_manifest,
    render_campaign_report,
    run_campaign,
)
from repro.experiments.common import clear_dataset_cache
from repro.telemetry import RunManifest, Telemetry
from repro.workload.generator import WorkloadConfig

#: Experiments that are meaningful on a seconds-long micro campaign.
MICRO_EXPERIMENTS = ["fig02", "fig09"]


def micro_config(seed: int = 3) -> SimulationConfig:
    """A campaign small enough that multi-seed tests stay in seconds."""
    return SimulationConfig(
        cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=2,
                            external_hosts=1),
        workload=WorkloadConfig(job_arrival_rate=0.3, day_load_factors=(1.0,),
                                day_length=40.0),
        duration=40.0,
        seed=seed,
    )


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    # Campaign tests build several micro datasets; keep them away from
    # the session-wide small-campaign cache entry.
    yield
    clear_dataset_cache()


class TestSerialVsParallel:
    def test_identical_per_seed_summary_rows(self, tmp_path):
        seeds = [3, 4]
        serial = run_campaign(
            micro_config(), seeds=seeds, experiments=MICRO_EXPERIMENTS,
            jobs=1, cache_dir=tmp_path / "serial",
        )
        parallel = run_campaign(
            micro_config(), seeds=seeds, experiments=MICRO_EXPERIMENTS,
            jobs=2, cache_dir=tmp_path / "parallel",
        )
        assert [run.seed for run in serial.seed_runs] == seeds
        assert [run.seed for run in parallel.seed_runs] == seeds
        for serial_run, parallel_run in zip(serial.seed_runs, parallel.seed_runs):
            # Identical seed => identical dataset content hash, whether the
            # dataset was built in-process or inside a spawned worker.
            assert serial_run.content_hash == parallel_run.content_hash
            assert serial_run.fingerprint == parallel_run.fingerprint
            assert serial_run.summaries == parallel_run.summaries
        assert serial.aggregates == parallel.aggregates

    def test_warm_disk_cache_rebuilds_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_campaign(
            micro_config(), seeds=[5, 6], experiments=["fig09"],
            jobs=1, cache_dir=cache_dir,
        )
        clear_dataset_cache()  # a second cold process
        tele = Telemetry()
        warm = run_campaign(
            micro_config(), seeds=[5, 6], experiments=["fig09"],
            jobs=1, cache_dir=cache_dir, telemetry=tele,
        )
        assert all(run.from_disk_cache for run in warm.seed_runs)
        snapshot = tele.metrics.snapshot()
        assert snapshot["dataset.disk_cache_hits"]["value"] == 2
        assert [run.summaries for run in warm.seed_runs] == [
            run.summaries for run in cold.seed_runs
        ]


class TestRunnerContract:
    def test_seed_count_expands_from_base_seed(self):
        result = run_campaign(
            micro_config(seed=9), seeds=2, experiments=["fig09"],
            jobs=1, disk_cache=False,
        )
        assert result.seeds == [9, 10]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="seeds"):
            run_campaign(micro_config(), seeds=0, experiments=["fig09"])
        with pytest.raises(ValueError, match="distinct"):
            run_campaign(micro_config(), seeds=[1, 1], experiments=["fig09"])
        with pytest.raises(KeyError, match="fig99"):
            run_campaign(micro_config(), seeds=1, experiments=["fig99"])

    def test_progress_callback_sees_every_seed(self):
        seen = []
        run_campaign(
            micro_config(), seeds=[7, 8], experiments=["fig09"], jobs=1,
            disk_cache=False,
            progress=lambda record, done, total: seen.append(
                (record["seed"], done, total)
            ),
        )
        assert [entry[0] for entry in seen] == [7, 8]
        assert seen[-1][1:] == (2, 2)


class TestAggregation:
    def _runs(self):
        return [
            SeedRun(seed=1, fingerprint="f1", content_hash="c1",
                    wall_seconds=1.0, build_seconds=0.5, from_disk_cache=False,
                    summaries={"exp": {"metric": 1.0}}),
            SeedRun(seed=2, fingerprint="f2", content_hash="c2",
                    wall_seconds=1.0, build_seconds=0.5, from_disk_cache=False,
                    summaries={"exp": {"metric": 3.0}}),
        ]

    def test_mean_stdev_ci(self):
        aggregates = aggregate_summaries(self._runs(), ["exp"])
        agg = aggregates["exp"]["metric"]
        assert agg["mean"] == pytest.approx(2.0)
        assert agg["stdev"] == pytest.approx(math.sqrt(2.0))
        assert agg["ci95"] == pytest.approx(1.96 * math.sqrt(2.0) / math.sqrt(2),
                                            rel=1e-3)
        assert agg["n"] == 2
        assert (agg["min"], agg["max"]) == (1.0, 3.0)

    def test_single_seed_degenerates_gracefully(self):
        aggregates = aggregate_summaries(self._runs()[:1], ["exp"])
        agg = aggregates["exp"]["metric"]
        assert agg["stdev"] == 0.0 and agg["ci95"] == 0.0 and agg["n"] == 1

    def test_metric_missing_for_some_seeds_uses_available(self):
        runs = self._runs()
        runs[1].summaries["exp"].pop("metric")
        runs[1].summaries["exp"]["other"] = 5.0
        aggregates = aggregate_summaries(runs, ["exp"])
        assert aggregates["exp"]["metric"]["n"] == 1
        assert aggregates["exp"]["other"]["n"] == 1


class TestManifestAndReport:
    def test_manifest_round_trip(self, tmp_path):
        tele = Telemetry()
        result = run_campaign(
            micro_config(), seeds=[11, 12], experiments=["fig09"], jobs=1,
            disk_cache=False, telemetry=tele,
        )
        manifest = campaign_manifest(result, tele)
        path = tmp_path / "campaign.json"
        manifest.write(path)

        raw = json.loads(path.read_text())
        campaign = raw["extra"]["campaign"]
        assert campaign["seeds"] == [11, 12]
        assert len(campaign["per_seed"]) == 2
        for row in campaign["per_seed"]:
            assert set(row) >= {"seed", "content_hash", "wall_seconds",
                                "summaries"}
        assert campaign["aggregates"]["fig09"]
        metric = next(iter(campaign["aggregates"]["fig09"].values()))
        assert set(metric) == {"mean", "stdev", "ci95", "n", "min", "max"}
        assert raw["metrics"]["campaign.seeds_completed"]["value"] == 2

        loaded = RunManifest.load(path)
        report = render_campaign_report(loaded.extra["campaign"])
        assert "mean ± 95% CI" in report
        assert "fig09" in report
        assert "where the wall-clock went" in report


class TestCampaignTimeline:
    def test_serial_campaign_produces_timeline(self):
        result = run_campaign(
            micro_config(), seeds=[13, 14], experiments=["fig09"], jobs=1,
            disk_cache=False, campaign_id="serial-test",
        )
        timeline = result.timeline
        assert result.campaign_id == "serial-test"
        assert timeline["kind"] == "campaign-timeline"
        assert timeline["seeds"] == [13, 14]
        labels = [lane["label"] for lane in timeline["lanes"]]
        assert labels[-1] == "parent"
        # A serial run is one worker lane (the parent pid) + the merge lane.
        assert len(labels) == 2
        phases = {
            phase["name"]
            for lane in timeline["lanes"]
            for segment in lane["segments"]
            for phase in segment["phases"]
        }
        assert {"dataset-load", "compute", "merge"} <= phases
        json.dumps(timeline)

    def test_parallel_timeline_covers_campaign_wall_clock(self, tmp_path):
        result = run_campaign(
            micro_config(), seeds=[3, 4, 5, 6], experiments=["fig09"],
            jobs=2, cache_dir=tmp_path / "cache",
        )
        timeline = result.timeline
        assert timeline["jobs"] == 2
        # Acceptance bar: per-worker lanes account for >= 95% of the
        # campaign window, split into named phases.
        assert timeline["coverage"] >= 0.95
        worker_lanes = [lane for lane in timeline["lanes"]
                        if lane["label"] != "parent"]
        assert sorted(s for lane in worker_lanes for s in lane["seeds"]) == \
            [3, 4, 5, 6]
        for lane in worker_lanes:
            assert all(segment["phases"] for segment in lane["segments"])
        extra = result.extra()
        assert extra["campaign_id"] == result.campaign_id
        assert extra["observability"]["coverage"] == timeline["coverage"]
        assert extra["observability"]["phase_totals"] == \
            timeline["phase_totals"]

    def test_campaign_metrics_travel_from_workers(self):
        tele = Telemetry()
        run_campaign(
            micro_config(), seeds=[15, 16], experiments=["fig09"], jobs=1,
            disk_cache=False, telemetry=tele,
        )
        snapshot = tele.metrics.snapshot()
        # Engine counters now come from the merged worker registries,
        # not just the parent process.
        assert snapshot["campaign.seeds_completed"]["value"] == 2
        assert snapshot["engine.events_processed"]["value"] > 0
