"""Work-queue scheduler: leases, crash injection, resume determinism.

Three layers, mirroring the scheduler's own structure:

* lease / result primitives — ``O_CREAT|O_EXCL`` single-winner claims,
  staleness (dead pid, old heartbeat), token-checked release, atomic
  idempotent publication;
* the warm pool end to end — serial vs warm determinism, multi-worker
  lanes, resume-after-interrupt identity;
* crash injection — a worker SIGKILLs itself mid-unit (via the
  ``REPRO_SCHEDULER_KILL`` hook), and the campaign still finishes with
  the exact hashes a serial run produces, counting the takeover.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig
from repro.experiments.cache import config_fingerprint
from repro.experiments.campaign import render_campaign_report, run_campaign
from repro.experiments.common import clear_dataset_cache
from repro.experiments.scheduler import (
    KILL_ENV,
    Lease,
    campaign_queue_id,
    claim_lease,
    lease_is_stale,
    load_result,
    publish_result,
    queue_dir_for,
    queue_status,
    read_lease,
    reset_queue,
)
from repro.workload.generator import WorkloadConfig

MICRO_EXPERIMENTS = ["fig02", "fig09"]


def micro_config(seed: int = 3) -> SimulationConfig:
    return SimulationConfig(
        cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=2,
                            external_hosts=1),
        workload=WorkloadConfig(job_arrival_rate=0.3, day_load_factors=(1.0,),
                                day_length=40.0),
        duration=40.0,
        seed=seed,
    )


@pytest.fixture(autouse=True)
def _fresh_memory_cache():
    yield
    clear_dataset_cache()


def _hashes(result) -> dict[int, str]:
    return {run.seed: run.content_hash for run in result.seed_runs}


# ------------------------------------------------------------------ primitives


class TestLeasePrimitives:
    def test_exactly_one_winner(self, tmp_path):
        key = "a" * 64
        first, takeover1 = claim_lease(tmp_path, key, ttl=30.0)
        second, takeover2 = claim_lease(tmp_path, key, ttl=30.0)
        assert first is not None and not takeover1
        assert second is None and not takeover2
        body = read_lease(tmp_path / f"{key}.lease")
        assert body["pid"] == os.getpid()
        assert body["token"] == first.token
        first.release()
        assert not (tmp_path / f"{key}.lease").exists()

    def test_dead_pid_makes_lease_stale_immediately(self):
        fresh = {"pid": os.getpid(), "host": __import__("socket").gethostname(),
                 "heartbeat": time.time(), "ttl": 30.0}
        assert not lease_is_stale(fresh)
        # pid 2**22-1 is above the default Linux pid_max: never alive.
        dead = dict(fresh, pid=(1 << 22) - 1)
        assert lease_is_stale(dead)

    def test_old_heartbeat_makes_lease_stale(self):
        lease = {"pid": os.getpid(), "host": "elsewhere",
                 "heartbeat": time.time() - 10.0, "ttl": 5.0}
        assert lease_is_stale(lease)
        lease["heartbeat"] = time.time()
        assert not lease_is_stale(lease)

    def test_takeover_of_stale_lease(self, tmp_path):
        key = "b" * 64
        path = tmp_path / f"{key}.lease"
        path.write_text(json.dumps({
            "pid": (1 << 22) - 1, "host": __import__("socket").gethostname(),
            "token": "dead", "heartbeat": time.time() - 100.0, "ttl": 1.0,
        }))
        lease, takeover = claim_lease(tmp_path, key, ttl=30.0)
        assert lease is not None and takeover
        assert read_lease(path)["token"] == lease.token
        lease.release()

    def test_release_is_token_checked(self, tmp_path):
        key = "c" * 64
        path = tmp_path / f"{key}.lease"
        stale = Lease(path, ttl=30.0)
        assert stale.acquire()
        # Another worker presumes us dead and takes over.
        path.write_text(json.dumps({
            "pid": os.getpid(), "host": "host", "token": "other",
            "heartbeat": time.time(), "ttl": 30.0,
        }))
        stale.release()
        assert path.exists(), "release must not unlink a successor's lease"
        assert read_lease(path)["token"] == "other"
        os.unlink(path)

    def test_renewer_refreshes_heartbeat(self, tmp_path):
        lease = Lease(tmp_path / ("d" * 64 + ".lease"), ttl=0.4)
        assert lease.acquire()
        first = read_lease(lease.path)["heartbeat"]
        time.sleep(0.3)
        assert read_lease(lease.path)["heartbeat"] > first
        lease.release()


class TestResultFiles:
    RECORD = {
        "seed": 7, "fingerprint": "e" * 64, "content_hash": "f" * 64,
        "wall_seconds": 1.0, "build_seconds": 0.5, "from_disk_cache": False,
        "summaries": {"fig02": {"rows": 3}},
        "report": {"not": "persisted"}, "takeover": True,
    }

    def test_publish_then_load_round_trip(self, tmp_path):
        publish_result(tmp_path, self.RECORD["fingerprint"], self.RECORD)
        loaded = load_result(tmp_path, self.RECORD["fingerprint"])
        assert loaded["seed"] == 7
        assert loaded["summaries"] == self.RECORD["summaries"]
        # Non-resumable fields (telemetry report, flags) are not persisted.
        assert "report" not in loaded and "takeover" not in loaded

    def test_load_rejects_mismatched_fingerprint(self, tmp_path):
        publish_result(tmp_path, self.RECORD["fingerprint"], self.RECORD)
        wrong = dict(self.RECORD, fingerprint="0" * 64)
        publish_result(tmp_path, "0" * 64, wrong)
        os.replace(tmp_path / ("0" * 64 + ".result.json"),
                   tmp_path / ("1" * 64 + ".result.json"))
        assert load_result(tmp_path, "1" * 64) is None

    def test_load_rejects_corrupt_and_partial(self, tmp_path):
        key = "2" * 64
        assert load_result(tmp_path, key) is None
        (tmp_path / f"{key}.result.json").write_text("{not json")
        assert load_result(tmp_path, key) is None
        (tmp_path / f"{key}.result.json").write_text(
            json.dumps({"seed": 1, "fingerprint": key})
        )
        assert load_result(tmp_path, key) is None

    def test_reset_queue_clears_artifacts(self, tmp_path):
        publish_result(tmp_path, self.RECORD["fingerprint"], self.RECORD)
        lease, _ = claim_lease(tmp_path, "3" * 64, ttl=30.0)
        (tmp_path / "x.killed").write_text("")
        lease._stop.set()  # keep the file; just stop the renewer
        lease._thread.join(timeout=2.0)
        assert reset_queue(tmp_path) == 3
        assert list(tmp_path.iterdir()) == []


class TestQueueStatus:
    def test_states_classified(self, tmp_path):
        config = micro_config()
        seeds = [3, 4, 5, 6]
        qid = campaign_queue_id(config, seeds, ["fig09"])
        qdir = queue_dir_for(qid, tmp_path)
        qdir.mkdir(parents=True)
        keys = {s: config_fingerprint(config.with_seed(s)) for s in seeds}
        publish_result(qdir, keys[3], {
            "seed": 3, "fingerprint": keys[3], "content_hash": "x" * 64,
            "wall_seconds": 0.1, "build_seconds": 0.1,
            "from_disk_cache": True, "summaries": {},
        })
        live, _ = claim_lease(qdir, keys[4], ttl=30.0)
        (qdir / f"{keys[5]}.lease").write_text(json.dumps({
            "pid": (1 << 22) - 1, "host": __import__("socket").gethostname(),
            "token": "t", "heartbeat": time.time() - 999.0, "ttl": 1.0,
        }))
        status = queue_status(config, seeds, ["fig09"], cache_dir=tmp_path)
        live.release()
        assert status["queue_id"] == qid and status["exists"]
        states = {u["seed"]: u["state"] for u in status["units"]}
        assert states == {3: "done", 4: "leased", 5: "stale", 6: "pending"}
        assert status["counts"] == {"done": 1, "leased": 1, "stale": 1,
                                    "pending": 1}


# ------------------------------------------------------------------ warm pool


class TestWarmPool:
    def test_serial_warm_matches_spawn(self, tmp_path):
        seeds = [3, 4]
        spawn = run_campaign(micro_config(), seeds=seeds,
                             experiments=MICRO_EXPERIMENTS, jobs=1,
                             pool="spawn", cache_dir=tmp_path / "spawn")
        warm = run_campaign(micro_config(), seeds=seeds,
                            experiments=MICRO_EXPERIMENTS, jobs=1,
                            pool="warm", cache_dir=tmp_path / "warm")
        assert _hashes(spawn) == _hashes(warm)
        assert spawn.aggregates == warm.aggregates
        assert warm.scheduler["pool"] == "warm"
        assert warm.scheduler["takeovers"] == 0
        assert "claim" in warm.timeline.get("phase_totals", {})

    def test_parallel_workers_share_one_queue(self, tmp_path):
        seeds = [3, 4, 5]
        serial = run_campaign(micro_config(), seeds=seeds,
                              experiments=["fig09"], jobs=1,
                              pool="spawn", cache_dir=tmp_path / "serial")
        warm = run_campaign(micro_config(), seeds=seeds,
                            experiments=["fig09"], jobs=2,
                            pool="warm", cache_dir=tmp_path / "warm")
        assert _hashes(serial) == _hashes(warm)
        assert serial.aggregates == warm.aggregates
        lanes = warm.timeline.get("lanes", [])
        worker_segments = [
            segment
            for lane in lanes
            for segment in lane.get("segments", [])
            if segment.get("seed") is not None
        ]
        assert len(worker_segments) == len(seeds)
        # No queue artefacts left behind except the published results.
        qdir = queue_dir_for(warm.scheduler["queue_id"], tmp_path / "warm")
        leftovers = {p.name.split(".", 1)[1] for p in qdir.iterdir()}
        assert leftovers == {"result.json"}

    def test_resume_loads_everything_without_recompute(self, tmp_path):
        seeds = [3, 4]
        cache = tmp_path / "cache"
        first = run_campaign(micro_config(), seeds=seeds,
                             experiments=["fig09"], jobs=1,
                             pool="warm", cache_dir=cache)
        clear_dataset_cache()
        again = run_campaign(micro_config(), seeds=seeds,
                             experiments=["fig09"], jobs=1,
                             pool="warm", cache_dir=cache, resume=True)
        assert again.scheduler["resumed_seeds"] == seeds
        assert all(run.resumed for run in again.seed_runs)
        assert _hashes(first) == _hashes(again)
        assert first.aggregates == again.aggregates
        # Resumed units contribute no fresh worker segments to the
        # timeline (only the parent's own merge lane remains).
        assert not [
            segment
            for lane in again.timeline.get("lanes", [])
            for segment in lane.get("segments", [])
            if segment.get("seed") is not None
        ]

    def test_resume_completes_a_partial_queue(self, tmp_path):
        config = micro_config()
        seeds = [3, 4]
        cache = tmp_path / "cache"
        full = run_campaign(config, seeds=seeds, experiments=["fig09"],
                            jobs=1, pool="warm", cache_dir=cache)
        # Simulate an interrupted run: drop one published result.
        qdir = queue_dir_for(full.scheduler["queue_id"], cache)
        victim = config_fingerprint(config.with_seed(4))
        os.unlink(qdir / f"{victim}.result.json")
        clear_dataset_cache()
        resumed = run_campaign(config, seeds=seeds, experiments=["fig09"],
                               jobs=1, pool="warm", cache_dir=cache,
                               resume=True)
        assert resumed.scheduler["resumed_seeds"] == [3]
        by_seed = {run.seed: run for run in resumed.seed_runs}
        assert by_seed[3].resumed and not by_seed[4].resumed
        assert by_seed[4].from_disk_cache  # dataset survived the interrupt
        assert _hashes(full) == _hashes(resumed)
        assert full.aggregates == resumed.aggregates

    def test_lease_wait_phase_billed_while_blocked(self, tmp_path):
        config = micro_config()
        cache = tmp_path / "cache"
        run_campaign(config, seeds=[3], experiments=["fig09"], jobs=1,
                     pool="warm", cache_dir=cache)  # warm the disk cache
        qid = campaign_queue_id(config, [3], ["fig09"])
        qdir = queue_dir_for(qid, cache)
        key = config_fingerprint(config.with_seed(3))
        # Forget the published result (keep the warm dataset cache) so
        # the resumed run must re-claim the unit — and wait for us.
        os.unlink(qdir / f"{key}.result.json")
        blocker, _ = claim_lease(qdir, key, ttl=30.0)
        assert blocker is not None
        timer = threading.Timer(0.3, blocker.release)
        timer.start()
        try:
            result = run_campaign(config, seeds=[3], experiments=["fig09"],
                                  jobs=1, pool="warm", cache_dir=cache,
                                  resume=True)
        finally:
            timer.cancel()
        assert "lease-wait" in result.timeline["phase_totals"]
        assert result.timeline["phase_totals"]["lease-wait"] >= 0.2


# ------------------------------------------------------------- crash injection


class TestCrashInjection:
    def test_sigkill_mid_claim_is_taken_over(self, tmp_path, monkeypatch):
        """A worker dies holding a lease; the campaign still finishes.

        The victim is SIGKILLed right after winning the lease for seed 4
        (the ``claimed`` stage), before any compute.  The surviving
        worker (or a respawn) finds the dead pid's lease, takes it over,
        and the final hashes are bit-identical to a serial run.
        """
        seeds = [3, 4, 5]
        serial = run_campaign(micro_config(), seeds=seeds,
                              experiments=["fig09"], jobs=1,
                              pool="spawn", cache_dir=tmp_path / "serial")
        monkeypatch.setenv(KILL_ENV, "4:claimed")
        killed = run_campaign(micro_config(), seeds=seeds,
                              experiments=["fig09"], jobs=2,
                              pool="warm", cache_dir=tmp_path / "warm",
                              lease_ttl=4.0)
        assert killed.scheduler["takeovers"] >= 1
        assert _hashes(serial) == _hashes(killed)
        assert serial.aggregates == killed.aggregates
        assert "claim" in killed.timeline.get("phase_totals", {})

    def test_sigkill_after_publish_no_duplicate_build(self, tmp_path,
                                                      monkeypatch):
        """A worker dies after storing the dataset but before the result.

        The takeover must not rebuild: the dataset is already in the
        disk cache (and its arrays in shared memory), so the redo of
        seed 3 loads instead of simulating — ``from_disk_cache`` is True
        and, when shared memory is available, the ``shm-attach`` phase
        appears in the merged timeline.
        """
        seeds = [3, 4]
        serial = run_campaign(micro_config(), seeds=seeds,
                              experiments=["fig09"], jobs=1,
                              pool="spawn", cache_dir=tmp_path / "serial")
        monkeypatch.setenv(KILL_ENV, "3:published")
        killed = run_campaign(micro_config(), seeds=seeds,
                              experiments=["fig09"], jobs=2,
                              pool="warm", cache_dir=tmp_path / "warm",
                              lease_ttl=2.0)
        assert killed.scheduler["takeovers"] >= 1
        assert _hashes(serial) == _hashes(killed)
        by_seed = {run.seed: run for run in killed.seed_runs}
        assert by_seed[3].from_disk_cache
        if killed.scheduler["use_shm"]:
            assert "shm-attach" in killed.timeline.get("phase_totals", {})

    def test_no_shared_memory_leaks_after_crash(self, tmp_path, monkeypatch):
        import glob

        before = set(glob.glob("/dev/shm/repro-*"))
        monkeypatch.setenv(KILL_ENV, "3:published")
        run_campaign(micro_config(), seeds=[3, 4], experiments=["fig09"],
                     jobs=2, pool="warm", cache_dir=tmp_path / "cache",
                     lease_ttl=2.0)
        assert set(glob.glob("/dev/shm/repro-*")) <= before


# ----------------------------------------------------------- partial manifests


class TestPartialReport:
    def test_report_degrades_on_interrupted_manifest(self, tmp_path):
        result = run_campaign(micro_config(), seeds=[3, 4],
                              experiments=["fig09"], jobs=1,
                              cache_dir=tmp_path)
        payload = result.extra()
        # An interrupted run: one seed never published, one is partial.
        payload["seeds"] = [3, 4, 5]
        payload["per_seed"] = [
            payload["per_seed"][0],
            {"seed": 4},  # claimed but crashed before any fields landed
        ]
        text = render_campaign_report(payload)
        assert "INCOMPLETE" in text
        assert "missing" in text
        assert "fig09" in text  # the completed seed still renders

    def test_report_of_complete_run_is_unchanged(self, tmp_path):
        result = run_campaign(micro_config(), seeds=[3], experiments=["fig09"],
                              jobs=1, cache_dir=tmp_path)
        text = render_campaign_report(result.extra())
        assert "INCOMPLETE" not in text
