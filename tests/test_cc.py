"""Queue-aware congestion-control transports (repro.simulation.cc)."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import SimulationConfig
from repro.simulation.cc import (
    CC_VARIANTS,
    CongestionControlConfig,
    LinkQueues,
    run_incast,
)
from repro.simulation.cc.cwnd import (
    dctcp_cut,
    dctcp_update_alpha,
    grow,
    halve,
    timeout_collapse,
)
from repro.simulation.impls import transport_family, transport_impl_names
from strategies import cc_configs


class TestCwnd:
    def test_dctcp_alpha_ewma(self):
        alpha = np.array([0.0, 1.0])
        updated = dctcp_update_alpha(alpha, np.array([1.0, 0.0]), gain=0.25)
        assert updated == pytest.approx([0.25, 0.75])

    def test_dctcp_alpha_decays_without_marks(self):
        alpha = np.array([0.8])
        for _ in range(50):
            alpha = dctcp_update_alpha(alpha, np.array([0.0]), gain=0.0625)
        assert alpha[0] < 0.05

    def test_dctcp_cut_proportional_vs_reno_halving(self):
        cwnd = np.array([32.0])
        gentle = dctcp_cut(cwnd, np.array([0.1]), min_cwnd=1.0)
        harsh = dctcp_cut(cwnd, np.array([1.0]), min_cwnd=1.0)
        halved, ssthresh = halve(cwnd, min_cwnd=1.0)
        assert gentle[0] == pytest.approx(32.0 * 0.95)
        # With alpha = 1 DCTCP's cut equals Reno's halving.
        assert harsh[0] == pytest.approx(halved[0]) == pytest.approx(16.0)
        assert ssthresh[0] == pytest.approx(16.0)

    def test_slow_start_doubles_then_exits_at_ssthresh(self):
        cwnd = np.array([2.0])
        ssthresh = np.array([12.0])
        seen = []
        for _ in range(4):
            cwnd = grow(cwnd, ssthresh, max_cwnd=1024.0)
            seen.append(float(cwnd[0]))
        # 2 -> 4 -> 8 -> clipped at 12 -> additive from there on.
        assert seen == pytest.approx([4.0, 8.0, 12.0, 13.0])

    def test_grow_respects_max_cwnd(self):
        cwnd = np.array([1000.0])
        grown = grow(cwnd, np.array([2048.0]), max_cwnd=1024.0)
        assert grown[0] == pytest.approx(1024.0)

    def test_timeout_collapse_restarts_slow_start(self):
        cwnd = np.array([64.0])
        collapsed, ssthresh = timeout_collapse(cwnd, min_cwnd=1.0)
        assert collapsed[0] == pytest.approx(1.0)
        assert ssthresh[0] == pytest.approx(32.0)
        # The floor of 2 * min_cwnd keeps a tiny window in slow start.
        _, floor = timeout_collapse(np.array([1.0]), min_cwnd=1.0)
        assert floor[0] == pytest.approx(2.0)


class TestLinkQueues:
    def _queues(self, **overrides) -> LinkQueues:
        params = CongestionControlConfig(**overrides)
        return LinkQueues(1, np.array([1500.0]), params)

    def test_marks_at_exactly_threshold(self):
        queues = self._queues(queue_capacity_packets=10,
                              ecn_threshold_packets=2)
        serviced_capacity = 1500.0  # capacity * dt at dt = 1
        arrivals = np.array([serviced_capacity + queues.threshold_bytes])
        _, drop_frac, mark_frac = queues.step(arrivals, dt=1.0)
        # Post-service backlog sits at exactly K -> the arrival is marked.
        assert queues.backlog_bytes[0] == pytest.approx(queues.threshold_bytes)
        assert mark_frac[0] == 1.0
        assert drop_frac[0] == 0.0

    def test_no_mark_below_threshold(self):
        queues = self._queues(queue_capacity_packets=10,
                              ecn_threshold_packets=2)
        arrivals = np.array([1500.0 + queues.threshold_bytes - 1.0])
        _, _, mark_frac = queues.step(arrivals, dt=1.0)
        assert queues.backlog_bytes[0] == pytest.approx(
            queues.threshold_bytes - 1.0
        )
        assert mark_frac[0] == 0.0

    def test_tail_drop_beyond_capacity(self):
        queues = self._queues(queue_capacity_packets=4,
                              ecn_threshold_packets=2)
        arrivals = np.array([1500.0 + queues.capacity_bytes + 3000.0])
        _, drop_frac, _ = queues.step(arrivals, dt=1.0)
        assert queues.backlog_bytes[0] == pytest.approx(queues.capacity_bytes)
        assert queues.dropped_bytes[0] == pytest.approx(3000.0)
        assert drop_frac[0] == pytest.approx(
            3000.0 / float(arrivals[0])
        )

    @given(params=cc_configs(), data=st.data())
    def test_queue_conservation_property(self, params, data):
        """enqueued == dequeued + resident at every step, under arbitrary
        arrival sequences over arbitrary valid parameter sets (drops are
        excluded from the enqueued ledger by construction)."""
        num_links = data.draw(st.integers(min_value=1, max_value=4))
        capacities = np.array(data.draw(st.lists(
            st.floats(min_value=1e3, max_value=1e9),
            min_size=num_links, max_size=num_links,
        )))
        queues = LinkQueues(num_links, capacities, params)
        steps = data.draw(st.integers(min_value=1, max_value=30))
        for _ in range(steps):
            arrivals = np.array(data.draw(st.lists(
                st.floats(min_value=0.0, max_value=5e6),
                min_size=num_links, max_size=num_links,
            )))
            queues.step(arrivals, params.tick)
            assert np.all(queues.backlog_bytes >= 0.0)
            assert np.all(
                queues.backlog_bytes <= queues.capacity_bytes + 1e-6
            )
            residual = queues.conservation_residual()
            scale = np.maximum(queues.enqueued_bytes, 1.0)
            assert np.all(np.abs(residual) <= 1e-9 * scale + 1e-6)


class TestRegistry:
    def test_all_variants_registered_as_queued(self):
        names = transport_impl_names()
        for variant in CC_VARIANTS:
            assert variant in names
            assert transport_family(variant) == "queued"

    def test_fluid_impls_still_fluid(self):
        assert transport_family("vectorized") == "fluid"
        assert transport_family("reference") == "fluid"

    def test_unknown_impl_rejected_with_catalogue(self):
        with pytest.raises(ValueError, match="dctcp"):
            transport_family("bogus")

    def test_config_accepts_queued_impl(self):
        config = SimulationConfig(transport_impl="dctcp")
        assert config.cc.ecn_threshold_packets == 30

    def test_config_rejects_unknown_impl(self):
        with pytest.raises(ValueError, match="transport impl"):
            SimulationConfig(transport_impl="warp-speed")

    def test_cc_params_validated(self):
        with pytest.raises(ValueError):
            CongestionControlConfig(tick=0.0)
        with pytest.raises(ValueError):
            CongestionControlConfig(ecn_threshold_packets=0)
        with pytest.raises(ValueError):
            CongestionControlConfig(timeout_loss_fraction=1.5)


class TestIncastRegression:
    """Deterministic pins of the collapse physics.

    The scenario consumes no randomness, so these values are exact
    reruns; the asserted bands are wide enough to survive benign
    parameter-tuning drift but not a broken mechanism.
    """

    def test_reno_onset_between_4_and_8_senders(self):
        mild = run_incast("reno", 4)
        collapsed = run_incast("reno", 8)
        assert mild.timeouts == 0
        assert mild.goodput_ratio > 0.5
        assert collapsed.timeouts > 0
        assert collapsed.goodput_ratio < 0.3

    def test_dctcp_resists_collapse_at_8(self):
        run = run_incast("dctcp", 8)
        assert run.timeouts == 0
        assert run.goodput_ratio > 0.6

    def test_ecn_taildrop_between(self):
        run = run_incast("ecn_taildrop", 8)
        assert run.timeouts == 0
        assert run.goodput_ratio > 0.4

    def test_dctcp_beats_reno_under_collapse(self):
        dctcp = run_incast("dctcp", 16)
        reno = run_incast("reno", 16)
        assert dctcp.goodput_ratio > reno.goodput_ratio + 0.3

    def test_all_flows_complete(self):
        for variant in CC_VARIANTS:
            run = run_incast(variant, 8)
            assert run.completed == 8

    def test_ecn_threshold_tradeoff(self):
        low = run_incast("dctcp", 2, bytes_per_sender=8_000_000.0,
                         cc=replace(CongestionControlConfig(),
                                    ecn_threshold_packets=10))
        high = run_incast("dctcp", 2, bytes_per_sender=8_000_000.0,
                          cc=replace(CongestionControlConfig(),
                                     ecn_threshold_packets=60))
        # Low K: shorter queues, some throughput given up; high K the
        # reverse — the fixed-threshold trade-off.
        assert low.mean_queue_delay < high.mean_queue_delay
        assert low.goodput_ratio < high.goodput_ratio
