"""Traffic matrix churn (Fig 10)."""

import numpy as np
import pytest

from repro.core.change import churn_stats, normalized_change_series
from repro.core.traffic_matrix import TrafficMatrixSeries


def series_from(matrices, window=10.0):
    arr = np.asarray(matrices, dtype=float)
    return TrafficMatrixSeries(
        matrices=arr, window=window, endpoint_ids=np.arange(arr.shape[1])
    )


class TestNormalizedChange:
    def test_identical_windows_zero_change(self):
        m = np.ones((2, 2))
        change = normalized_change_series(series_from([m, m]))
        assert change.tolist() == [0.0]

    def test_full_turnover(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        change = normalized_change_series(series_from([a, b]))
        # numerator |b - a| sums to 2, denominator 1
        assert change[0] == pytest.approx(2.0)

    def test_magnitude_change(self):
        a = np.array([[0.0, 1.0], [0.0, 0.0]])
        b = 2 * a
        change = normalized_change_series(series_from([a, b]))
        assert change[0] == pytest.approx(1.0)

    def test_zero_base_is_nan(self):
        zero = np.zeros((2, 2))
        busy = np.ones((2, 2))
        change = normalized_change_series(series_from([zero, busy]))
        assert np.isnan(change[0])

    def test_single_window_empty(self):
        assert normalized_change_series(series_from([np.ones((2, 2))])).size == 0

    def test_participant_churn_without_volume_change(self):
        """The paper's point: totals equal, participants different."""
        a = np.array([[0.0, 5.0], [0.0, 0.0]])
        b = np.array([[0.0, 0.0], [5.0, 0.0]])
        change = normalized_change_series(series_from([a, b]))
        assert change[0] == pytest.approx(2.0)  # maximal churn, same total


class TestChurnStats:
    def test_rate_series(self):
        mats = [np.full((2, 2), 10.0), np.full((2, 2), 20.0)] * 5
        stats = churn_stats(series_from(mats, window=10.0),
                            bisection_bandwidth=100.0, long_factor=2)
        assert stats.aggregate_rate[0] == pytest.approx(4.0)  # 40 bytes / 10 s
        assert stats.peak_rate == pytest.approx(8.0)
        assert stats.peak_over_bisection == pytest.approx(0.08)

    def test_two_timescales(self):
        rng = np.random.default_rng(0)
        mats = rng.random((20, 3, 3))
        stats = churn_stats(series_from(mats), bisection_bandwidth=1.0,
                            long_factor=2)
        assert stats.tau_short == 10.0
        assert stats.tau_long == 20.0
        assert stats.change_short.size == 19
        assert stats.change_long.size == 9
        assert np.isfinite(stats.median_change_short)
        assert np.isfinite(stats.median_change_long)

    def test_zero_bisection_nan(self):
        mats = [np.ones((2, 2))] * 12
        stats = churn_stats(series_from(mats), bisection_bandwidth=0.0)
        assert np.isnan(stats.peak_over_bisection)
