"""Command-line interface."""

import json

from repro.cli import main


class TestSimulate:
    def test_runs_and_reports(self, capsys, tmp_path):
        dump = tmp_path / "log.z"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "3", "--dump-log", str(dump),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "transfers_completed" in out
        assert dump.exists()
        assert dump.stat().st_size > 0

    def test_deterministic_across_invocations(self, capsys):
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        first = capsys.readouterr().out
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestSimulateTelemetry:
    def test_telemetry_smoke(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "123",
            "--telemetry", "--trace-out", str(trace),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        # At least one progress heartbeat on stderr.
        heartbeats = [line for line in captured.err.splitlines()
                      if line.startswith("[telemetry]")]
        assert len(heartbeats) >= 1
        assert "events=" in heartbeats[0]
        # Valid JSONL trace with nested spans covering the pipeline.
        spans = [json.loads(line) for line in
                 trace.read_text().strip().splitlines()]
        names = {span["name"] for span in spans}
        assert {"simulate.campaign", "simulate.engine_run",
                "simulate.transport_settle",
                "simulate.workload_schedule"} <= names
        campaign = next(s for s in spans if s["name"] == "simulate.campaign")
        engine_run = next(s for s in spans if s["name"] == "simulate.engine_run")
        assert engine_run["parent_id"] == campaign["span_id"]
        # Manifest records config, seed and a rich metrics snapshot.
        manifest = json.loads(manifest_path.read_text())
        assert manifest["seed"] == 123
        assert manifest["config"]["cluster"]["racks"] == 3
        assert len(manifest["metrics"]) >= 10
        assert "dataset.cache_misses" in manifest["metrics"]
        assert "dataset.cache_hits" in manifest["metrics"]
        assert manifest["metrics"]["engine.events_processed"]["value"] > 0

    def test_manifest_path_derived_from_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "124", "--trace-out", str(trace),
        ])
        assert code == 0
        assert (tmp_path / "t.jsonl.manifest.json").exists()

    def test_telemetry_report_renders_tables(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "125",
            "--trace-out", str(trace), "--manifest-out", str(manifest_path),
        ])
        capsys.readouterr()
        code = main(["telemetry-report", str(trace),
                     "--manifest", str(manifest_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulate.engine_run" in out
        assert "engine.events_processed" in out
        assert "seed=125" in out

    def test_telemetry_report_without_inputs_fails(self, capsys):
        assert main(["telemetry-report"]) == 2
        assert "nothing to report" in capsys.readouterr().err

    def test_telemetry_report_aggregates_many_traces(self, capsys, tmp_path):
        for seed in (1, 2):
            main([
                "simulate", "--racks", "3", "--servers-per-rack", "4",
                "--duration", "20", "--seed", str(seed),
                "--trace-out", str(tmp_path / f"trace{seed}.jsonl"),
            ])
        capsys.readouterr()
        code = main(["telemetry-report", str(tmp_path / "trace*.jsonl")])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 traces" in out
        # Each simulate contributes one engine run to the rollup.
        line = next(l for l in out.splitlines()
                    if l.startswith("simulate.engine_run"))
        assert line.split("|")[1].strip() == "2"

    def test_telemetry_report_unmatched_glob_fails(self, capsys, tmp_path):
        assert main(["telemetry-report", str(tmp_path / "nope*.jsonl")]) == 2
        assert "no trace matches" in capsys.readouterr().err


class TestFigures:
    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        code = main(["figures", "fig09"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "paper" in out


class TestAblations:
    def test_unknown_ablation_rejected(self, capsys):
        assert main(["ablations", "nope"]) == 2
        assert "unknown ablations" in capsys.readouterr().err

    def test_gravity_ablation_runs(self, capsys):
        code = main(["ablations", "gravity", "--seed", "5"])
        assert code == 0
        assert "ISP regime" in capsys.readouterr().out


class TestFiguresList:
    def test_lists_the_whole_registry(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out
        assert "experiment registry" in out
        for name in ("fig02", "fig14", "table_s2", "ext_sampling", "gravity"):
            assert name in out


class TestCampaign:
    def test_run_then_report(self, capsys, tmp_path, dataset):
        # The session dataset fixture pre-warms the in-memory cache for
        # the default small config, so a 1-seed campaign is instant.
        manifest_path = tmp_path / "campaign.json"
        code = main([
            "campaign", "run", "--seeds", "1", "--jobs", "1",
            "--experiments", "fig09",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "mean ± 95% CI" in captured.out
        assert "[campaign] seed" in captured.err
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["extra"]["campaign"]["per_seed"]) == 1

        assert main(["campaign", "report", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "mean ± 95% CI" in out

    def test_run_writes_timeline_next_to_manifest(self, capsys, tmp_path,
                                                  dataset):
        manifest_path = tmp_path / "campaign-manifest.json"
        code = main([
            "campaign", "run", "--seeds", "1", "--jobs", "1",
            "--experiments", "fig09",
            "--cache-dir", str(tmp_path / "cache"),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0
        assert "wrote campaign timeline" in capsys.readouterr().out
        timeline_path = tmp_path / "campaign-timeline.json"
        assert timeline_path.exists()
        timeline = json.loads(timeline_path.read_text())
        assert timeline["kind"] == "campaign-timeline"
        assert timeline["coverage"] > 0

        assert main(["telemetry", "timeline", str(timeline_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign timeline" in out
        assert "phase key:" in out

        assert main(["telemetry", "diff", str(timeline_path),
                     str(timeline_path)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_heartbeat_flag_prints_seed_progress(self, capsys, tmp_path):
        # A fresh base seed sidesteps the session dataset cache — the
        # heartbeat only fires while a dataset actually simulates.
        code = main([
            "campaign", "run", "--seeds", "1", "--base-seed", "321",
            "--jobs", "1", "--experiments", "fig09", "--no-disk-cache",
            "--heartbeat", "5",
            "--manifest-out", str(tmp_path / "m.json"),
            "--timeline-out", str(tmp_path / "t.json"),
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "[campaign seed" in err
        assert (tmp_path / "t.json").exists()

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["campaign", "run", "--seeds", "1",
                     "--experiments", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_report_rejects_non_campaign_manifest(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "9", "--trace-out", str(trace)])
        capsys.readouterr()
        manifest = tmp_path / "t.jsonl.manifest.json"
        assert main(["campaign", "report", str(manifest)]) == 2
        assert "no campaign record" in capsys.readouterr().err


class TestCache:
    def test_ls_and_clear(self, capsys, tmp_path, dataset):
        cache_dir = tmp_path / "cache"
        assert main(["cache", "ls", "--cache-dir", str(cache_dir)]) == 0
        assert "no cached datasets" in capsys.readouterr().out

        main(["campaign", "run", "--seeds", "1", "--experiments", "fig09",
              "--cache-dir", str(cache_dir),
              "--manifest-out", str(tmp_path / "m.json")])
        capsys.readouterr()

        assert main(["cache", "ls", "--cache-dir", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "dataset cache" in out
        assert str(dataset.config.seed) in out

        assert main(["cache", "clear", "--cache-dir", str(cache_dir)]) == 0
        assert "removed 1 cached dataset(s)" in capsys.readouterr().out
