"""Command-line interface."""

import json

from repro.cli import main


class TestSimulate:
    def test_runs_and_reports(self, capsys, tmp_path):
        dump = tmp_path / "log.z"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "3", "--dump-log", str(dump),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "transfers_completed" in out
        assert dump.exists()
        assert dump.stat().st_size > 0

    def test_deterministic_across_invocations(self, capsys):
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        first = capsys.readouterr().out
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestSimulateTelemetry:
    def test_telemetry_smoke(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "123",
            "--telemetry", "--trace-out", str(trace),
            "--manifest-out", str(manifest_path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        # At least one progress heartbeat on stderr.
        heartbeats = [line for line in captured.err.splitlines()
                      if line.startswith("[telemetry]")]
        assert len(heartbeats) >= 1
        assert "events=" in heartbeats[0]
        # Valid JSONL trace with nested spans covering the pipeline.
        spans = [json.loads(line) for line in
                 trace.read_text().strip().splitlines()]
        names = {span["name"] for span in spans}
        assert {"simulate.campaign", "simulate.engine_run",
                "simulate.transport_settle",
                "simulate.workload_schedule"} <= names
        campaign = next(s for s in spans if s["name"] == "simulate.campaign")
        engine_run = next(s for s in spans if s["name"] == "simulate.engine_run")
        assert engine_run["parent_id"] == campaign["span_id"]
        # Manifest records config, seed and a rich metrics snapshot.
        manifest = json.loads(manifest_path.read_text())
        assert manifest["seed"] == 123
        assert manifest["config"]["cluster"]["racks"] == 3
        assert len(manifest["metrics"]) >= 10
        assert "dataset.cache_misses" in manifest["metrics"]
        assert "dataset.cache_hits" in manifest["metrics"]
        assert manifest["metrics"]["engine.events_processed"]["value"] > 0

    def test_manifest_path_derived_from_trace(self, capsys, tmp_path):
        trace = tmp_path / "t.jsonl"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "124", "--trace-out", str(trace),
        ])
        assert code == 0
        assert (tmp_path / "t.jsonl.manifest.json").exists()

    def test_telemetry_report_renders_tables(self, capsys, tmp_path):
        trace = tmp_path / "trace.jsonl"
        manifest_path = tmp_path / "manifest.json"
        main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "125",
            "--trace-out", str(trace), "--manifest-out", str(manifest_path),
        ])
        capsys.readouterr()
        code = main(["telemetry-report", str(trace),
                     "--manifest", str(manifest_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "simulate.engine_run" in out
        assert "engine.events_processed" in out
        assert "seed=125" in out

    def test_telemetry_report_without_inputs_fails(self, capsys):
        assert main(["telemetry-report"]) == 2
        assert "nothing to report" in capsys.readouterr().err


class TestFigures:
    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        code = main(["figures", "fig09"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "paper" in out


class TestAblations:
    def test_unknown_ablation_rejected(self, capsys):
        assert main(["ablations", "nope"]) == 2
        assert "unknown ablations" in capsys.readouterr().err

    def test_gravity_ablation_runs(self, capsys):
        code = main(["ablations", "gravity", "--seed", "5"])
        assert code == 0
        assert "ISP regime" in capsys.readouterr().out
