"""Command-line interface."""

from repro.cli import main


class TestSimulate:
    def test_runs_and_reports(self, capsys, tmp_path):
        dump = tmp_path / "log.z"
        code = main([
            "simulate", "--racks", "3", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "3", "--dump-log", str(dump),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "transfers_completed" in out
        assert dump.exists()
        assert dump.stat().st_size > 0

    def test_deterministic_across_invocations(self, capsys):
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        first = capsys.readouterr().out
        main(["simulate", "--racks", "3", "--servers-per-rack", "4",
              "--duration", "20", "--seed", "3"])
        second = capsys.readouterr().out
        assert first == second


class TestFigures:
    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_single_figure_runs(self, capsys):
        code = main(["figures", "fig09"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "paper" in out


class TestAblations:
    def test_unknown_ablation_rejected(self, capsys):
        assert main(["ablations", "nope"]) == 2
        assert "unknown ablations" in capsys.readouterr().err

    def test_gravity_ablation_runs(self, capsys):
        code = main(["ablations", "gravity", "--seed", "5"])
        assert code == 0
        assert "ISP regime" in capsys.readouterr().out
