"""The ETW-like socket event collector."""

import pytest

from repro.instrumentation.collector import SERVICE_PORTS, ClusterCollector, CollectorConfig
from repro.instrumentation.events import DIRECTION_RECV, DIRECTION_SEND
from repro.simulation.transport import Transfer, TransferMeta
from repro.util.units import MB


def make_transfer(topo, src=0, dst=1, size=1 * MB, start=0.0, end=1.0,
                  kind="fetch", connection_key=None, job_id=5, phase=0):
    return Transfer(
        transfer_id=0, src=src, dst=dst, size=size, start_time=start, end_time=end,
        meta=TransferMeta(kind=kind, job_id=job_id, phase_index=phase,
                          connection_key=connection_key),
    )


@pytest.fixture()
def collector(tiny_topology, rng):
    return ClusterCollector(tiny_topology, rng=rng)


class TestEvents:
    def test_both_sides_log(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology))
        log = collector.finalize()
        directions = set(log.column("direction").tolist())
        assert directions == {DIRECTION_SEND, DIRECTION_RECV}
        servers = set(log.column("server").tolist())
        assert servers == {0, 1}

    def test_external_endpoint_not_instrumented(self, tiny_topology, rng):
        collector = ClusterCollector(tiny_topology, rng=rng)
        external = tiny_topology.num_nodes - 1
        collector.observe_transfer(make_transfer(tiny_topology, src=external, dst=3))
        log = collector.finalize()
        assert set(log.column("server").tolist()) == {3}
        assert set(log.column("direction").tolist()) == {DIRECTION_RECV}

    def test_large_transfer_chunked(self, tiny_topology, rng):
        config = CollectorConfig(chunk_bytes=1 * MB, max_events_per_transfer=4)
        collector = ClusterCollector(tiny_topology, rng=rng, config=config)
        collector.observe_transfer(make_transfer(tiny_topology, size=10 * MB))
        log = collector.finalize()
        send_events = log.select(log.column("direction") == DIRECTION_SEND)
        assert len(send_events) == 4  # capped
        assert send_events.column("num_bytes").sum() == pytest.approx(10 * MB)

    def test_small_transfer_single_event(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology, size=1000.0))
        log = collector.finalize()
        send_events = log.select(log.column("direction") == DIRECTION_SEND)
        assert len(send_events) == 1

    def test_event_times_span_transfer(self, tiny_topology, rng):
        config = CollectorConfig(chunk_bytes=1 * MB, clock_skew_max=0.0)
        collector = ClusterCollector(tiny_topology, rng=rng, config=config)
        collector.observe_transfer(
            make_transfer(tiny_topology, size=6 * MB, start=2.0, end=5.0)
        )
        log = collector.finalize()
        send = log.select(log.column("direction") == DIRECTION_SEND)
        times = send.column("timestamp")
        assert times.min() == pytest.approx(2.0)
        assert times.max() == pytest.approx(5.0)

    def test_job_context_tagged(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology, job_id=42, phase=3))
        log = collector.finalize()
        assert set(log.column("job_id").tolist()) == {42}
        assert set(log.column("phase_index").tolist()) == {3}

    def test_byte_conservation_per_side(self, tiny_topology, collector):
        size = 7.3 * MB
        collector.observe_transfer(make_transfer(tiny_topology, size=size))
        log = collector.finalize()
        assert log.total_bytes(DIRECTION_SEND) == pytest.approx(size)
        assert log.total_bytes(DIRECTION_RECV) == pytest.approx(size)


class TestPorts:
    def test_service_port_by_kind(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology, kind="replication"))
        log = collector.finalize()
        assert set(log.column("src_port").tolist()) == {SERVICE_PORTS["replication"]}

    def test_unknown_kind_falls_back(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology, kind="mystery"))
        log = collector.finalize()
        assert set(log.column("src_port").tolist()) == {SERVICE_PORTS["unknown"]}

    def test_connection_key_reuses_port(self, tiny_topology, collector):
        key = ("job", 1, 0)
        collector.observe_transfer(
            make_transfer(tiny_topology, connection_key=key, start=0.0, end=1.0)
        )
        collector.observe_transfer(
            make_transfer(tiny_topology, connection_key=key, start=2.0, end=3.0)
        )
        log = collector.finalize()
        assert len(set(log.column("dst_port").tolist())) == 1

    def test_no_key_gets_fresh_ports(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology))
        collector.observe_transfer(make_transfer(tiny_topology))
        log = collector.finalize()
        assert len(set(log.column("dst_port").tolist())) == 2

    def test_ephemeral_range(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology))
        log = collector.finalize()
        port = int(log.column("dst_port")[0])
        assert 49152 <= port < 49152 + 16000


class TestClockSkew:
    def test_offsets_bounded(self, tiny_topology, rng):
        config = CollectorConfig(clock_skew_max=0.05)
        collector = ClusterCollector(tiny_topology, rng=rng, config=config)
        for server in range(tiny_topology.num_servers):
            assert abs(collector.clock_offset_of(server)) <= 0.05

    def test_skew_applied_to_timestamps(self, tiny_topology, rng):
        config = CollectorConfig(clock_skew_max=0.05, chunk_bytes=1e12)
        collector = ClusterCollector(tiny_topology, rng=rng, config=config)
        collector.observe_transfer(make_transfer(tiny_topology, src=0, dst=1,
                                                 start=10.0, end=11.0))
        log = collector.finalize()
        for i in range(len(log)):
            event = log.row(i)
            expected = 10.0 + collector.clock_offset_of(event.server)
            assert event.timestamp == pytest.approx(expected)

    def test_zero_skew(self, tiny_topology, rng):
        config = CollectorConfig(clock_skew_max=0.0)
        collector = ClusterCollector(tiny_topology, rng=rng, config=config)
        assert collector.clock_offset_of(0) == 0.0


class TestConfigValidation:
    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            CollectorConfig(chunk_bytes=0)

    def test_bad_max_events(self):
        with pytest.raises(ValueError):
            CollectorConfig(max_events_per_transfer=0)

    def test_bad_skew(self):
        with pytest.raises(ValueError):
            CollectorConfig(clock_skew_max=-0.1)

    def test_overhead_counters(self, tiny_topology, collector):
        collector.observe_transfer(make_transfer(tiny_topology, size=3 * MB))
        assert collector.transfers_observed == 1
        assert collector.bytes_observed == pytest.approx(3 * MB)
        assert collector.events_emitted() >= 2
