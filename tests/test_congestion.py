"""Congestion detection, episodes and victim flows (Figs 5-7)."""

import numpy as np
import pytest

from repro.core.congestion import (
    congestion_summary,
    find_episodes,
    flows_overlapping_congestion,
    hot_matrix,
    simultaneous_hot_links,
    victim_flow_comparison,
)
from repro.core.flows import FlowTable


def make_flows(rows):
    """rows: list of (src, dst, start, end, bytes)."""
    arrays = list(zip(*rows)) if rows else [[], [], [], [], []]
    n = len(rows)
    return FlowTable(
        src=np.array(arrays[0], dtype=np.int64),
        src_port=np.full(n, 8400, dtype=np.int64),
        dst=np.array(arrays[1], dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=np.array(arrays[2], dtype=float),
        end_time=np.array(arrays[3], dtype=float),
        num_bytes=np.array(arrays[4], dtype=float),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.zeros(n, dtype=np.int64),
        phase_index=np.zeros(n, dtype=np.int64),
    )


class TestHotMatrix:
    def test_threshold(self):
        util = np.array([[0.5, 0.8], [0.69, 0.71]])
        hot = hot_matrix(util, threshold=0.7)
        assert hot.tolist() == [[False, True], [False, True]]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            hot_matrix(np.zeros((1, 1)), threshold=0.0)


class TestEpisodes:
    def test_single_run(self):
        hot = np.array([[False, True, True, True, False]])
        episodes = find_episodes(hot)
        assert len(episodes) == 1
        assert episodes[0].start == 1.0
        assert episodes[0].duration == 3.0
        assert episodes[0].end == 4.0

    def test_multiple_runs_same_link(self):
        hot = np.array([[True, False, True, True]])
        episodes = find_episodes(hot)
        assert [e.duration for e in episodes] == [1.0, 2.0]

    def test_link_ids_respected(self):
        hot = np.array([[False], [True]])
        episodes = find_episodes(hot, link_ids=np.array([10, 20]))
        assert episodes[0].link_id == 20

    def test_bin_width_scales(self):
        hot = np.array([[True, True]])
        episodes = find_episodes(hot, bin_width=5.0)
        assert episodes[0].duration == 10.0

    def test_no_congestion(self):
        assert find_episodes(np.zeros((3, 10), dtype=bool)) == []


class TestSummary:
    def test_fractions(self):
        util = np.zeros((4, 200))
        util[0, :15] = 0.9      # 15 s episode
        util[1, :120] = 0.9     # 120 s episode
        util[2, 0:5] = 0.9      # 5 s episode
        summary = congestion_summary(util)
        assert summary.num_links == 4
        assert summary.links_with_any_congestion == 3
        assert summary.frac_links_hot_at_least_10s == pytest.approx(0.5)
        assert summary.frac_links_hot_at_least_100s == pytest.approx(0.25)
        assert summary.longest_episode == 120.0
        assert summary.episodes_over_10s == 2

    def test_episode_cdf_and_short_fraction(self):
        util = np.zeros((1, 100))
        util[0, 0:2] = 0.9    # 2 s
        util[0, 10:13] = 0.9  # 3 s
        util[0, 20:40] = 0.9  # 20 s
        summary = congestion_summary(util)
        assert summary.frac_episodes_at_most(10.0) == pytest.approx(2 / 3)
        cdf = summary.episode_duration_ecdf(min_duration=1.0)
        assert cdf.n == 3

    def test_simultaneous_counts(self):
        util = np.zeros((3, 4))
        util[:, 1] = 0.9
        util[0, 2] = 0.9
        counts = simultaneous_hot_links(util)
        assert counts.tolist() == [0, 3, 1, 0]


class TestVictimFlows:
    def test_overlap_detection(self, tiny_topology, tiny_router):
        util = np.zeros((tiny_topology.num_links, 10))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 5] = 0.9
        flows = make_flows([
            (0, 1, 4.0, 6.0, 100.0),   # overlaps second 5
            (0, 1, 0.0, 2.0, 100.0),   # before congestion
            (2, 3, 4.0, 6.0, 100.0),   # different path
        ])
        overlap = flows_overlapping_congestion(flows, tiny_router, util)
        assert overlap.tolist() == [True, False, False]

    def test_comparison_statistics(self, tiny_topology, tiny_router):
        util = np.zeros((tiny_topology.num_links, 10))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 0] = 0.9
        flows = make_flows([
            (0, 1, 0.0, 1.0, 100.0),
            (2, 3, 0.0, 1.0, 100.0),
        ])
        comparison = victim_flow_comparison(flows, tiny_router, util)
        assert comparison.overlapping_rates.size == 1
        assert comparison.all_rates.size == 2
        assert comparison.median_ratio == pytest.approx(1.0)

    def test_empty_flows(self, tiny_topology, tiny_router):
        util = np.zeros((tiny_topology.num_links, 10))
        comparison = victim_flow_comparison(make_flows([]), tiny_router, util)
        assert np.isnan(comparison.median_ratio)
