"""Corruption injection against the on-disk trace store.

Each test copies the session's recorded trace, damages it one way
(flipped bytes mid-chunk, truncated last chunk, deleted sidecar,
doctored manifest) and asserts the failure surfaces as the typed
:class:`TraceCorruptionError` / a named checker violation — never a raw
``zipfile``/``numpy``/``KeyError`` leaking out of the reader.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.cli import main
from repro.trace.format import LINKLOADS_NAME, MANIFEST_NAME
from repro.trace.reader import TraceReader
from repro.validate import TraceCorruptionError, ValidationError, validate


@pytest.fixture()
def trace_copy(recorded_trace, tmp_path):
    """A private mutable copy of the session trace."""
    target = tmp_path / "copy.reprotrace"
    shutil.copytree(recorded_trace, target)
    return target


def _chunk_files(path):
    return sorted(path.glob("events-*.npz"))


def _flip_byte(path, offset_fraction=0.5):
    data = bytearray(path.read_bytes())
    data[int(len(data) * offset_fraction)] ^= 0xFF
    path.write_bytes(bytes(data))


class TestFlippedChunkBytes:
    def test_reader_raises_typed_error(self, trace_copy):
        _flip_byte(_chunk_files(trace_copy)[0])
        reader = TraceReader(trace_copy)
        with pytest.raises(TraceCorruptionError) as exc_info:
            reader.read_all()
        message = str(exc_info.value)
        assert "events-00000.npz" in message
        assert isinstance(exc_info.value, ValidationError)

    def test_named_checker_detects(self, trace_copy):
        _flip_byte(_chunk_files(trace_copy)[0])
        report = validate(str(trace_copy), names=["trace.chunk_hashes"])
        assert not report.ok
        assert report.violations[0].checker == "trace.chunk_hashes"

    def test_cli_exits_nonzero(self, trace_copy, capsys):
        _flip_byte(_chunk_files(trace_copy)[0])
        assert main(["validate", str(trace_copy)]) == 1
        assert "trace.chunk_hashes" in capsys.readouterr().out

    def test_undetectable_by_zip_still_caught_by_hash(self, trace_copy):
        # Rewrite a chunk with VALID npz content but different data: the
        # container parses fine, only the content hash can tell.
        reader = TraceReader(trace_copy)
        columns = reader.chunk_columns(0)
        columns["num_bytes"] = columns["num_bytes"] * 2.0
        target = trace_copy / reader.chunks[0]["file"]
        np.savez(target.with_suffix(""), **columns)
        report = validate(str(trace_copy), names=["trace.chunk_hashes"])
        assert not report.ok
        assert any(
            "hash mismatch" in violation.message
            for violation in report.violations
        )


class TestTruncatedChunk:
    def test_reader_raises_typed_error(self, trace_copy):
        last = _chunk_files(trace_copy)[-1]
        data = last.read_bytes()
        last.write_bytes(data[: len(data) // 3])
        reader = TraceReader(trace_copy)
        with pytest.raises(TraceCorruptionError):
            reader.read_chunk(reader.num_chunks - 1)

    def test_checker_and_cli(self, trace_copy, capsys):
        last = _chunk_files(trace_copy)[-1]
        last.write_bytes(last.read_bytes()[:100])
        assert main(["validate", str(trace_copy)]) == 1
        assert "trace.chunk_hashes" in capsys.readouterr().out

    def test_deleted_chunk(self, trace_copy):
        _chunk_files(trace_copy)[0].unlink()
        report = validate(
            str(trace_copy), names=["trace.manifest", "trace.chunk_hashes"]
        )
        assert not report.ok
        manifest_result = report.result_for("trace.manifest")
        assert any("missing" in v.message for v in manifest_result.violations)


class TestMissingSidecar:
    def test_reader_raises_typed_error(self, trace_copy):
        (trace_copy / LINKLOADS_NAME).unlink()
        with pytest.raises(TraceCorruptionError) as exc_info:
            TraceReader(trace_copy).linkloads()
        assert LINKLOADS_NAME in str(exc_info.value)

    def test_named_checker_detects(self, trace_copy):
        (trace_copy / LINKLOADS_NAME).unlink()
        report = validate(str(trace_copy), names=["trace.sidecar"])
        assert not report.ok
        assert any(
            "sidecar missing" in violation.message
            for violation in report.violations
        )

    def test_cli_exits_nonzero(self, trace_copy, capsys):
        (trace_copy / LINKLOADS_NAME).unlink()
        assert main(["validate", str(trace_copy)]) == 1
        assert "trace.sidecar" in capsys.readouterr().out

    def test_corrupt_sidecar_bytes(self, trace_copy):
        _flip_byte(trace_copy / LINKLOADS_NAME, 0.7)
        report = validate(str(trace_copy), names=["trace.sidecar"])
        assert not report.ok


class TestManifestTampering:
    def test_row_count_mismatch(self, trace_copy):
        manifest_path = trace_copy / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["total_rows"] += 17
        manifest_path.write_text(json.dumps(manifest))
        report = validate(str(trace_copy), names=["trace.manifest"])
        assert any(
            "total_rows" in violation.message
            for violation in report.violations
        )

    def test_overlapping_chunk_spans(self, trace_copy):
        manifest_path = trace_copy / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        if len(manifest["chunks"]) < 2:
            pytest.skip("needs at least two chunks")
        manifest["chunks"][1]["t_min"] = manifest["chunks"][0]["t_max"] - 5.0
        manifest_path.write_text(json.dumps(manifest))
        report = validate(str(trace_copy), names=["events.monotone"])
        assert any("overlap" in v.message for v in report.violations)


def test_intact_copy_still_validates(trace_copy, assert_invariants):
    """The copy machinery itself must not break anything."""
    assert_invariants(str(trace_copy))
