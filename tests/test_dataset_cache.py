"""Dataset caching: content-addressed keys, LRU bounds, the disk layer.

The staleness regression class this guards: the old cache key was a
hand-maintained tuple that silently ignored new config fields.  The
content hash walks ``dataclasses.fields`` recursively, so *every* field
of ``SimulationConfig``/``WorkloadConfig``/``ClusterSpec`` (and the
collector) must change the key — asserted field by field below.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig
from repro.experiments import cache as cache_module
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    DatasetDiskCache,
    LRUCache,
    config_fingerprint,
    dataset_content_hash,
)
from repro.experiments.common import (
    build_dataset,
    clear_dataset_cache,
    dataset_cache_stats,
    set_dataset_cache_limit,
)
from repro.telemetry import Telemetry
from repro.workload.generator import WorkloadConfig


def tiny_config(seed: int = 0, duration: float = 20.0) -> SimulationConfig:
    """A seconds-fast campaign for cache-behaviour tests."""
    return SimulationConfig(
        # spine_count is inert on a tree, but pre-setting it keeps the
        # single-field topology_kind perturbation below a valid spec.
        cluster=ClusterSpec(racks=2, servers_per_rack=2, racks_per_vlan=2,
                            external_hosts=1, spine_count=1),
        workload=WorkloadConfig(job_arrival_rate=0.3, day_load_factors=(1.0,),
                                day_length=duration),
        duration=duration,
        seed=seed,
    )


# ------------------------------------------------------- field perturbation

#: Fields whose type-generic perturbation (int+1 / float*0.9) would not
#: survive validation or not change the value meaningfully.
_SPECIAL = {
    "fairness": lambda value: "bottleneck" if value == "maxmin" else "maxmin",
    "transport_impl": lambda value: (
        "reference" if value == "vectorized" else "vectorized"
    ),
    "routing_impl": lambda value: "ecmp" if value == "single" else "single",
    "topology_kind": lambda value: (
        "leaf_spine" if value == "tree" else "tree"
    ),
    "template_weights": lambda value: {
        **value, next(iter(value)): next(iter(value.values())) * 2.0
    },
    "templates": lambda value: {
        **value,
        next(iter(value)): dataclasses.replace(
            next(iter(value.values())),
            max_input_bytes=next(iter(value.values())).max_input_bytes * 2,
        ),
    },
    "day_load_factors": lambda value: tuple(value) + (0.5,),
    "ingestion_bytes_range": lambda value: (value[0], value[1] * 2),
}


def perturb(value, name: str):
    """A *valid*, different value for a config field."""
    if name in _SPECIAL:
        return _SPECIAL[name](value)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value * 0.9 + 1e-9
    if dataclasses.is_dataclass(value):
        fields = dataclasses.fields(value)
        first = fields[0]
        return dataclasses.replace(
            value, **{first.name: perturb(getattr(value, first.name), first.name)}
        )
    raise NotImplementedError(f"no perturbation for field {name!r}: {value!r}")


class TestFingerprintCoversEveryField:
    """Regression: a config field the key ignores can never exist again."""

    def _assert_all_fields_matter(self, base_config, get_sub, rebuild):
        base_key = config_fingerprint(base_config)
        sub = get_sub(base_config)
        for field in dataclasses.fields(type(sub)):
            changed = perturb(getattr(sub, field.name), field.name)
            mutated = rebuild(
                base_config, dataclasses.replace(sub, **{field.name: changed})
            )
            assert config_fingerprint(mutated) != base_key, (
                f"{type(sub).__name__}.{field.name} does not affect the cache key"
            )

    def test_every_simulation_config_field(self):
        self._assert_all_fields_matter(
            tiny_config(), lambda c: c, lambda _base, new: new
        )

    def test_every_workload_config_field(self):
        self._assert_all_fields_matter(
            tiny_config(),
            lambda c: c.workload,
            lambda base, new: dataclasses.replace(base, workload=new),
        )

    def test_every_cluster_spec_field(self):
        self._assert_all_fields_matter(
            tiny_config(),
            lambda c: c.cluster,
            lambda base, new: dataclasses.replace(base, cluster=new),
        )

    def test_every_collector_config_field(self):
        self._assert_all_fields_matter(
            tiny_config(),
            lambda c: c.collector,
            lambda base, new: dataclasses.replace(base, collector=new),
        )

    def test_deeply_nested_template_change_matters(self):
        config = tiny_config()
        template_name = next(iter(config.workload.templates))
        template = config.workload.templates[template_name]
        deeper = dataclasses.replace(
            template, min_input_bytes=template.min_input_bytes * 1.5
        )
        mutated = dataclasses.replace(
            config,
            workload=dataclasses.replace(
                config.workload,
                templates={**config.workload.templates, template_name: deeper},
            ),
        )
        assert config_fingerprint(mutated) != config_fingerprint(config)

    def test_schema_version_invalidates(self, monkeypatch):
        before = config_fingerprint(tiny_config())
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        assert config_fingerprint(tiny_config()) != before


class TestLRUCache:
    def test_evicts_least_recently_used(self):
        evicted = []
        lru = LRUCache(limit=2, on_evict=lambda key, _val: evicted.append(key))
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # refresh "a"; "b" is now oldest
        lru.put("c", 3)
        assert evicted == ["b"]
        assert lru.get("b") is None
        assert lru.get("a") == 1 and lru.get("c") == 3
        assert lru.evictions == 1

    def test_set_limit_shrinks(self):
        lru = LRUCache(limit=4)
        for key in "abcd":
            lru.put(key, key)
        lru.set_limit(1)
        assert len(lru) == 1
        assert lru.keys() == ["d"]

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            LRUCache(limit=0)
        with pytest.raises(ValueError):
            LRUCache(limit=2).set_limit(0)


@pytest.fixture()
def isolated_dataset_cache():
    """Empty in-memory dataset cache for the test, restored afterwards."""
    from repro.experiments.common import _CACHE

    saved = [(key, _CACHE.get(key)) for key in _CACHE.keys()]
    saved_limit = _CACHE.limit
    clear_dataset_cache()
    yield
    clear_dataset_cache()
    _CACHE.set_limit(saved_limit)
    for key, value in saved:
        _CACHE.put(key, value)


class TestBoundedDatasetCache:
    def test_sweep_stays_within_limit_and_counts_evictions(
        self, isolated_dataset_cache
    ):
        previous = set_dataset_cache_limit(2)
        try:
            tele = Telemetry()
            for seed in (11, 12, 13):
                build_dataset(tiny_config(seed=seed), telemetry=tele,
                              disk_cache=False)
            stats = dataset_cache_stats()
            assert stats["size"] == 2
            assert stats["limit"] == 2
            snapshot = tele.metrics.snapshot()
            assert snapshot["dataset.cache_evictions"]["value"] == 1
        finally:
            set_dataset_cache_limit(previous)

    def test_set_limit_reports_previous(self, isolated_dataset_cache):
        previous = set_dataset_cache_limit(3)
        assert set_dataset_cache_limit(previous) == 3


class TestDiskCache:
    def test_round_trip_preserves_content(self, tmp_path, isolated_dataset_cache):
        config = tiny_config(seed=21)
        built = build_dataset(config, cache_dir=tmp_path)
        original_hash = dataset_content_hash(built)

        clear_dataset_cache()
        tele = Telemetry()
        loaded = build_dataset(config, telemetry=tele, cache_dir=tmp_path)
        assert loaded is not built
        snapshot = tele.metrics.snapshot()
        assert snapshot["dataset.disk_cache_hits"]["value"] == 1
        assert dataset_content_hash(loaded) == original_hash
        assert np.array_equal(loaded.utilization, built.utilization)
        assert np.array_equal(loaded.observed_links, built.observed_links)
        assert loaded.config == built.config

    def test_cold_process_equivalent_build_skips_simulation(
        self, tmp_path, isolated_dataset_cache, monkeypatch
    ):
        config = tiny_config(seed=22)
        build_dataset(config, cache_dir=tmp_path)
        clear_dataset_cache()  # "cold process": no in-memory entries

        def explode(*_args, **_kwargs):  # pragma: no cover - must not run
            raise AssertionError("simulate() called despite warm disk cache")

        monkeypatch.setattr("repro.experiments.common.simulate", explode)
        loaded = build_dataset(config, cache_dir=tmp_path)
        assert loaded.config.seed == 22

    def test_entries_and_clear(self, tmp_path, isolated_dataset_cache):
        disk = DatasetDiskCache(tmp_path)
        assert disk.entries() == []
        build_dataset(tiny_config(seed=23), cache_dir=tmp_path)
        entries = disk.entries()
        assert len(entries) == 1
        entry = entries[0]
        assert entry["seed"] == 23
        assert entry["schema_version"] == CACHE_SCHEMA_VERSION
        assert entry["size_bytes"] > 0
        assert len(entry["content_hash"]) == 64
        assert disk.clear() == 1
        assert disk.entries() == []

    def test_version_mismatch_is_a_miss(self, tmp_path, isolated_dataset_cache,
                                        monkeypatch):
        config = tiny_config(seed=24)
        build_dataset(config, cache_dir=tmp_path)
        clear_dataset_cache()
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION",
                            CACHE_SCHEMA_VERSION + 1)
        # Note: the fingerprint also changes with the schema version, but
        # the loader must reject stale payloads even at an equal path.
        disk = DatasetDiskCache(tmp_path)
        old_fingerprint = disk.entries()[0]["fingerprint"]
        assert disk.load(old_fingerprint) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path, isolated_dataset_cache):
        config = tiny_config(seed=25)
        build_dataset(config, cache_dir=tmp_path)
        disk = DatasetDiskCache(tmp_path)
        fingerprint = disk.entries()[0]["fingerprint"]
        (disk.entry_dir(fingerprint) / "dataset.pkl").write_bytes(b"garbage")
        assert disk.load(fingerprint) is None

    def test_load_unknown_fingerprint_is_none(self, tmp_path):
        assert DatasetDiskCache(tmp_path).load("0" * 64) is None


class TestContentHash:
    def test_identical_config_identical_hash_in_process(
        self, isolated_dataset_cache
    ):
        config = tiny_config(seed=31)
        first = build_dataset(config, disk_cache=False)
        clear_dataset_cache()
        second = build_dataset(tiny_config(seed=31), disk_cache=False)
        assert first is not second
        assert dataset_content_hash(first) == dataset_content_hash(second)

    def test_different_seed_different_hash(self, isolated_dataset_cache):
        one = build_dataset(tiny_config(seed=32), disk_cache=False)
        two = build_dataset(tiny_config(seed=33), disk_cache=False)
        assert dataset_content_hash(one) != dataset_content_hash(two)
