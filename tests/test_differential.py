"""Differential fuzzing: in-memory vs streaming vs trace-backed.

Seeded random small configs drive all three derivation paths over the
same campaign and assert exact agreement, plus a full invariant sweep on
each. Marked ``slow``: run by CI's trace-smoke job and locally via
``pytest -m slow``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig
from repro.core.flows import reconstruct_flows
from repro.core.traffic_matrix import tm_series_from_events
from repro.experiments.common import dataset_from_trace
from repro.simulation.simulator import simulate
from repro.trace.analyze import _flow_tables_equal, analyze_trace
from repro.trace.record import record_trace
from repro.workload.generator import WorkloadConfig

pytestmark = pytest.mark.slow

#: Fixed fuzz seed: CI failures must reproduce locally byte for byte.
_FUZZ_SEED = 20260806


def _random_configs(count: int) -> list[SimulationConfig]:
    rng = np.random.default_rng(_FUZZ_SEED)
    configs = []
    for _ in range(count):
        configs.append(SimulationConfig(
            cluster=ClusterSpec(
                racks=int(rng.integers(2, 5)),
                servers_per_rack=int(rng.integers(2, 5)),
                racks_per_vlan=int(rng.integers(1, 3)),
                external_hosts=int(rng.integers(0, 3)),
            ),
            workload=WorkloadConfig(
                job_arrival_rate=float(rng.uniform(0.1, 0.4))
            ),
            duration=float(rng.uniform(10.0, 25.0)),
            seed=int(rng.integers(0, 2**31)),
        ))
    return configs


@pytest.mark.parametrize("index,config", list(enumerate(_random_configs(3))))
def test_three_paths_agree(index, config, tmp_path, assert_invariants):
    trace_path = tmp_path / f"fuzz-{index}.reprotrace"
    record = record_trace(config, trace_path, chunk_size=512)

    # Path 1: classic in-memory pipeline.
    result = simulate(config)
    flows_mem = reconstruct_flows(result.socket_log)
    tm_mem = tm_series_from_events(
        result.socket_log, result.topology, 10.0, config.duration
    )

    # Recording must not perturb the simulation.
    assert record.result.stats["socket_events_streamed"] == len(
        result.socket_log
    )

    # Path 2: streaming analysis over the recorded trace (two jobs when
    # there is more than one chunk, so the merge path runs too).
    jobs = 2 if len(record.manifest["chunks"]) > 1 else 1
    analysis = analyze_trace(trace_path, jobs=jobs, window=10.0)
    assert _flow_tables_equal(analysis.flows, flows_mem)
    assert np.array_equal(analysis.tm.matrices, tm_mem.matrices)

    # Path 3: trace-backed dataset.
    dataset = dataset_from_trace(trace_path)
    assert _flow_tables_equal(dataset.flows, flows_mem)
    assert np.array_equal(dataset.tm10.matrices, tm_mem.matrices)
    assert np.array_equal(
        dataset.utilization, result.link_loads.utilization_matrix()
    )

    # And every invariant checker passes on both live and trace contexts.
    assert_invariants(result)
    assert_invariants(str(trace_path))


# ------------------------------------------------- topology dimension


def _chunk_hashes(manifest: dict) -> list[str]:
    return [chunk["sha256"] for chunk in manifest["chunks"]]


_TREE_CONFIG = SimulationConfig(
    cluster=ClusterSpec(racks=3, servers_per_rack=3, racks_per_vlan=2),
    workload=WorkloadConfig(job_arrival_rate=0.3),
    duration=15.0,
    seed=_FUZZ_SEED % 1000,
)

_FLUID_IMPLS = ("vectorized", "reference", "csr", "incremental")


@pytest.mark.parametrize("transport_impl", _FLUID_IMPLS)
def test_tree_bit_identical_across_routing(transport_impl, tmp_path):
    """On the tree every equal-cost set is a singleton, so ECMP and
    flowlet routing degenerate to the canonical path: per transport
    impl, every routing impl must produce byte-identical event streams
    (chunk content hashes) and link-load sidecars.  (Impls are compared
    within themselves, not to each other — completion ordering between
    the incremental and batch allocators differs by design, and did at
    the seed revision too.)"""
    import dataclasses

    baseline = None
    for routing_impl in ("single", "ecmp", "flowlet"):
        config = dataclasses.replace(
            _TREE_CONFIG,
            transport_impl=transport_impl,
            routing_impl=routing_impl,
        )
        record = record_trace(
            config,
            tmp_path / f"tree-{transport_impl}-{routing_impl}.reprotrace",
            chunk_size=512,
        )
        hashes = _chunk_hashes(record.manifest)
        loads_hash = record.manifest["linkloads"]["sha256"]
        assert hashes, "campaign produced no events"
        if baseline is None:
            baseline = (hashes, loads_hash)
        else:
            assert (hashes, loads_hash) == baseline, (
                f"{transport_impl}/{routing_impl} diverged from "
                f"{transport_impl}/single on the tree"
            )


def _fabric_configs() -> list[SimulationConfig]:
    seed = _FUZZ_SEED % 997
    workload = WorkloadConfig(job_arrival_rate=0.3)
    return [
        SimulationConfig(
            cluster=ClusterSpec.fat_tree(k=2, servers_per_rack=3),
            workload=workload, duration=15.0, seed=seed,
            routing_impl="ecmp",
        ),
        SimulationConfig(
            cluster=ClusterSpec.leaf_spine(racks=3, spines=2,
                                           servers_per_rack=3),
            workload=workload, duration=15.0, seed=seed,
            routing_impl="flowlet",
        ),
    ]


@pytest.mark.parametrize(
    "config", _fabric_configs(),
    ids=lambda c: f"{c.cluster.topology_kind}-{c.routing_impl}",
)
def test_fabric_three_paths_agree(config, tmp_path, assert_invariants):
    """The in-memory / streaming / trace-backed agreement holds on the
    multi-path fabrics too, including trace-meta topology rehydration."""
    trace_path = tmp_path / f"{config.cluster.topology_kind}.reprotrace"
    record = record_trace(config, trace_path, chunk_size=512)

    result = simulate(config)
    flows_mem = reconstruct_flows(result.socket_log)
    assert record.result.stats["socket_events_streamed"] == len(
        result.socket_log
    )

    analysis = analyze_trace(trace_path, jobs=1, window=10.0)
    assert _flow_tables_equal(analysis.flows, flows_mem)

    dataset = dataset_from_trace(trace_path)
    assert dataset.result.topology.kind == config.cluster.topology_kind
    assert _flow_tables_equal(dataset.flows, flows_mem)
    assert np.array_equal(
        dataset.utilization, result.link_loads.utilization_matrix()
    )

    assert_invariants(result)
    assert_invariants(str(trace_path))
