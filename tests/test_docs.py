"""Documentation guards: importability, docstrings, ARCHITECTURE.md.

The CI docs job builds the pdoc API reference, which imports every
module under ``src/repro`` — so a module that fails to import or ships
without a docstring breaks the docs build.  These tests are the local,
dependency-free proxy: they walk the same module tree, import
everything, and require real docstrings, failing here before CI does.
"""

from __future__ import annotations

import importlib
import pathlib
import pkgutil

import pytest

import repro

_SRC_ROOT = pathlib.Path(repro.__file__).parent
_REPO_ROOT = _SRC_ROOT.parent.parent


def _all_module_names() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


def _package_names() -> list[str]:
    return sorted(
        name for name in _all_module_names()
        if (_SRC_ROOT.parent / name.replace(".", "/") / "__init__.py").exists()
    )


@pytest.mark.parametrize("name", _all_module_names())
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{name} has no module docstring"
    )


@pytest.mark.parametrize("name", _package_names())
def test_package_docstrings_are_substantial(name):
    """Package docstrings orient a reader, not just name the package.

    One-line stubs defeat the API reference's index page — every package
    summary there should say what the subsystem is *for*.
    """
    module = importlib.import_module(name)
    doc = module.__doc__.strip()
    assert len(doc.splitlines()) >= 3, (
        f"package {name} has a one-line docstring; describe the subsystem"
    )


class TestArchitectureDoc:
    @pytest.fixture(scope="class")
    def text(self):
        path = _REPO_ROOT / "ARCHITECTURE.md"
        assert path.exists(), "ARCHITECTURE.md missing from repo root"
        return path.read_text()

    def test_subsystem_map_covers_every_package(self, text):
        for name in _package_names():
            if name == "repro":
                continue
            short = name.split(".", 1)[1]
            assert f"repro/{short}" in text or f"`{name}`" in text, (
                f"ARCHITECTURE.md does not mention package {name}"
            )

    def test_paper_cross_reference_table(self, text):
        """The paper section/figure table maps onto real modules."""
        for anchor in ("§4.1", "§4.2", "§4.3", "§5", "Fig 2", "Fig 14",
                       "Table S2"):
            assert anchor in text, f"cross-reference table missing {anchor}"
        for module in ("fig02", "fig06", "fig12", "table_s2"):
            assert f"experiments/{module}.py" in text, (
                f"cross-reference table missing experiment module {module}"
            )
        for bench in ("bench_fig02_tm_patterns", "bench_table_s2_overhead"):
            assert bench in text, (
                f"cross-reference table missing benchmark {bench}"
            )

    def test_dataflow_diagram_present(self, text):
        assert "synthetic" in text and "viz" in text
        assert "──" in text or "-->" in text, "no dataflow diagram found"

    def test_referenced_paths_exist(self, text):
        """Every `path`-style reference into the tree points at a real file
        or directory (stale docs rot fastest through renames)."""
        import re

        for match in re.findall(r"`((?:src|benchmarks|tests)/[^`*]+)`", text):
            target = match.split("::")[0].rstrip("/")
            assert (_REPO_ROOT / target).exists(), (
                f"ARCHITECTURE.md references missing path {target}"
            )

    def test_topology_family_documented(self, text):
        """The cluster subsystem section covers the fabric family and the
        per-flow routing impls, and points at the real modules."""
        for module in ("src/repro/cluster/fabrics.py",
                       "src/repro/cluster/routing.py"):
            assert module in text, f"ARCHITECTURE.md missing {module}"
        for kind in ("fat-tree", "leaf-spine"):
            assert kind in text, f"dataflow diagram missing fabric {kind}"
        for impl in ("ecmp", "flowlet"):
            assert impl in text, f"routing impl {impl} undocumented"


class TestTopologyDocs:
    """Guards for the T1/T2 satellite docs: the scenario matrix in
    EXPERIMENTS.md and the fabric-selection section in README.md must
    track the registered experiments and the CLI flags they describe."""

    @pytest.fixture(scope="class")
    def experiments_text(self):
        path = _REPO_ROOT / "EXPERIMENTS.md"
        assert path.exists(), "EXPERIMENTS.md missing from repo root"
        return path.read_text()

    @pytest.fixture(scope="class")
    def readme_text(self):
        path = _REPO_ROOT / "README.md"
        assert path.exists(), "README.md missing from repo root"
        return path.read_text()

    def test_experiments_scenario_matrix(self, experiments_text):
        from repro.cluster.routing import ROUTING_IMPLS
        from repro.cluster.topology import TOPOLOGY_KINDS

        assert "T1" in experiments_text and "T2" in experiments_text
        for kind in TOPOLOGY_KINDS:
            assert f"`{kind}`" in experiments_text, (
                f"scenario matrix missing fabric {kind}"
            )
        for impl in ROUTING_IMPLS:
            assert f"`{impl}`" in experiments_text, (
                f"scenario matrix missing routing impl {impl}"
            )

    def test_experiments_name_registered_topo_studies(self, experiments_text):
        from repro.experiments.registry import get_experiment

        for name in ("topo_ecmp_vs_flowlet", "topo_fabric_sweep"):
            assert get_experiment(name) is not None
            assert name in experiments_text, (
                f"EXPERIMENTS.md does not document experiment {name}"
            )

    def test_experiments_campaign_commands(self, experiments_text):
        assert "repro campaign run" in experiments_text
        assert "repro ablations topo_ecmp_vs_flowlet" in experiments_text

    def test_readme_fabric_section(self, readme_text):
        assert "## Choosing a fabric" in readme_text
        for flag in ("--topology", "--fat-tree-k", "--spines", "--routing"):
            assert flag in readme_text, (
                f"README fabric section missing CLI flag {flag}"
            )
        for ctor in ("ClusterSpec.fat_tree", "ClusterSpec.leaf_spine"):
            assert ctor in readme_text, (
                f"README fabric section missing constructor {ctor}"
            )

    def test_readme_cli_flags_exist(self, readme_text):
        """Every --flag the README's fabric section shows must be a real
        option on both the simulate and trace-record parsers."""
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args([
            "simulate", "--topology", "leaf_spine", "--spines", "3",
            "--routing", "flowlet", "--duration", "5",
        ])
        assert args.topology == "leaf_spine" and args.routing == "flowlet"
        args = parser.parse_args([
            "trace", "record", "--topology", "fat_tree", "--fat-tree-k",
            "4", "--routing", "ecmp", "--out", "x.reprotrace",
        ])
        assert args.fat_tree_k == 4 and args.routing == "ecmp"


class TestOperationsHandbook:
    """Guards for docs/OPERATIONS.md and the scheduler docs satellite:
    the handbook's paths must exist, the CLI invocations it shows must
    parse, and the surrounding docs must keep their scheduler sections."""

    @pytest.fixture(scope="class")
    def text(self):
        path = _REPO_ROOT / "docs" / "OPERATIONS.md"
        assert path.exists(), "docs/OPERATIONS.md missing"
        return path.read_text()

    def test_covers_the_operational_topics(self, text):
        for topic in ("--resume", "campaign status", "--lease-ttl",
                      "TTL", "stale", "takeover", "/dev/shm",
                      "manifest_nbytes", "dataset_load_ratio"):
            assert topic in text, f"OPERATIONS.md does not cover {topic}"

    def test_referenced_paths_exist(self, text):
        import re

        for match in re.findall(r"`((?:src|benchmarks|tests|docs)/[^`*]+)`",
                                text):
            target = match.split("::")[0].rstrip("/")
            assert (_REPO_ROOT / target).exists(), (
                f"OPERATIONS.md references missing path {target}"
            )

    def test_lease_ttl_and_phase_chars_match_the_code(self, text):
        from repro.experiments.scheduler import DEFAULT_LEASE_TTL
        from repro.telemetry.export import _PHASE_CHARS

        assert f"{DEFAULT_LEASE_TTL:.0f} s" in text, (
            "OPERATIONS.md states a default TTL that is not "
            f"DEFAULT_LEASE_TTL ({DEFAULT_LEASE_TTL})"
        )
        for phase, char in _PHASE_CHARS.items():
            assert f"`{char}` | {phase}" in text, (
                f"OPERATIONS.md phase table missing {char} = {phase}"
            )

    def test_cli_flags_parse(self, text):
        """The run/status/resume invocations the handbook (and README's
        scaling section) show must be real parser options."""
        from repro.cli import _build_parser

        parser = _build_parser()
        args = parser.parse_args([
            "campaign", "run", "--seeds", "8", "--jobs", "4",
            "--experiments", "fig02,fig09", "--pool", "warm",
            "--resume", "--lease-ttl", "10",
            "--cache-dir", ".repro-cache",
        ])
        assert args.pool == "warm" and args.resume
        assert args.lease_ttl == 10.0
        args = parser.parse_args([
            "campaign", "status", "--seeds", "8",
            "--experiments", "fig02,fig09", "--cache-dir", ".repro-cache",
        ])
        assert args.campaign_command == "status"
        args = parser.parse_args(["campaign", "run", "--pool", "spawn"])
        assert args.pool == "spawn"

    def test_readme_scaling_section(self):
        readme = (_REPO_ROOT / "README.md").read_text()
        assert "## Scaling a campaign" in readme
        for anchor in ("--resume", "campaign status", "docs/OPERATIONS.md"):
            assert anchor in readme, f"README scaling section missing {anchor}"

    def test_experiments_resume_semantics_section(self):
        experiments = (_REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert "`--resume` reproducibility semantics" in experiments
        assert "content hashes" in experiments

    def test_architecture_scheduler_dataflow(self):
        architecture = (_REPO_ROOT / "ARCHITECTURE.md").read_text()
        assert "## Campaign scheduler dataflow" in architecture
        for step in ("claim", "publish", "merge",
                     "src/repro/experiments/scheduler.py",
                     "src/repro/experiments/shm.py"):
            assert step in architecture, (
                f"ARCHITECTURE.md scheduler dataflow missing {step}"
            )
