"""Discrete event engine."""

import pytest

from repro.simulation.engine import EventEngine


class TestScheduling:
    def test_events_fire_in_order(self):
        engine = EventEngine()
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.schedule(3.0, lambda: fired.append("c"))
        engine.run(until=10.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo(self):
        engine = EventEngine()
        fired = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: fired.append(n))
        engine.run(until=2.0)
        assert fired == ["a", "b", "c"]

    def test_clock_lands_on_until(self):
        engine = EventEngine()
        engine.run(until=5.0)
        assert engine.now == 5.0

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.run(until=5.0)
        with pytest.raises(ValueError):
            engine.schedule(1.0, lambda: None)

    def test_schedule_after(self):
        engine = EventEngine()
        times = []
        engine.schedule_after(1.5, lambda: times.append(engine.now))
        engine.run(until=2.0)
        assert times == [1.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventEngine().schedule_after(-1.0, lambda: None)

    def test_events_beyond_until_pend(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, lambda: fired.append(1))
        engine.run(until=4.0)
        assert fired == []
        assert engine.pending == 1
        engine.run(until=6.0)
        assert fired == [1]

    def test_cannot_run_backwards(self):
        engine = EventEngine()
        engine.run(until=5.0)
        with pytest.raises(ValueError):
            engine.run(until=4.0)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventEngine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run(until=2.0)
        assert fired == []
        assert engine.events_processed == 0

    def test_cancel_idempotent(self):
        engine = EventEngine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_peek_skips_cancelled(self):
        engine = EventEngine()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        first.cancel()
        assert engine.peek_time() == 2.0


class TestHooks:
    def test_batch_hook_runs_once_per_timestamp(self):
        engine = EventEngine()
        batches = []
        engine.batch_hook = lambda: batches.append(engine.now)
        for time in (1.0, 1.0, 2.0):
            engine.schedule(time, lambda: None)
        engine.run(until=3.0)
        assert batches == [1.0, 2.0]

    def test_time_advance_hook_sees_new_time(self):
        engine = EventEngine()
        advances = []
        engine.time_advance_hook = advances.append
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.5, lambda: None)
        engine.run(until=3.0)
        assert advances == [1.0, 2.5]

    def test_callback_extends_batch_at_same_time(self):
        engine = EventEngine()
        fired = []

        def chain():
            fired.append("first")
            engine.schedule(engine.now, lambda: fired.append("second"))

        engine.schedule(1.0, chain)
        engine.run(until=2.0)
        assert fired == ["first", "second"]

    def test_events_scheduled_by_batch_hook_run(self):
        engine = EventEngine()
        fired = []

        def hook():
            if engine.now == 1.0 and not fired:
                engine.schedule(1.5, lambda: fired.append("late"))

        engine.batch_hook = hook
        engine.schedule(1.0, lambda: None)
        engine.run(until=2.0)
        assert fired == ["late"]


class TestCompaction:
    def test_tombstone_majority_triggers_compaction(self):
        from repro.simulation.engine import _COMPACT_MIN_TOMBSTONES

        engine = EventEngine()
        fired = []
        keep = [
            engine.schedule(float(i), lambda i=i: fired.append(i))
            for i in range(50)
        ]
        doomed = [
            engine.schedule(1000.0 + i, lambda: fired.append("doomed"))
            for i in range(_COMPACT_MIN_TOMBSTONES + 10)
        ]
        for handle in doomed:
            handle.cancel()
        # Tombstones outnumber live events past the floor: the heap was
        # rebuilt in place and the telemetry counters recorded it.
        assert engine.heap_compactions >= 1
        assert engine.peak_tombstones >= _COMPACT_MIN_TOMBSTONES
        # Cancels after the rebuild may leave fresh tombstones, but the
        # heap never again holds the full cancelled backlog.
        assert engine._tombstones < _COMPACT_MIN_TOMBSTONES
        assert len(engine._heap) == len(keep) + engine._tombstones
        # Compaction is invisible to delivery: survivors fire in order.
        engine.run(until=100.0)
        assert fired == list(range(50))

    def test_small_heaps_never_compact(self):
        engine = EventEngine()
        for _ in range(10):
            engine.schedule(1.0, lambda: None).cancel()
        assert engine.heap_compactions == 0
        assert engine.peak_tombstones == 10

    def test_explicit_compact_is_stable(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, lambda: fired.append("a"))
        stale = engine.schedule(1.0, lambda: fired.append("stale"))
        engine.schedule(1.0, lambda: fired.append("b"))
        stale.cancel()
        engine.compact()
        assert engine._tombstones == 0
        engine.run(until=2.0)
        # Same-timestamp FIFO order survives the rebuild.
        assert fired == ["a", "b"]


class TestDynamicSources:
    def test_source_drives_a_batch(self):
        engine = EventEngine()
        wakeups = []
        engine.add_dynamic_source(lambda: 5.0 if not wakeups else None)
        engine.time_advance_hook = lambda now: wakeups.append(now)
        engine.run(until=10.0)
        assert wakeups == [5.0]
        assert engine.dynamic_wakeups == 1
        assert engine.now == 10.0

    def test_source_fires_once_per_timestamp(self):
        # A source that keeps requesting the same instant must not spin
        # the loop: the per-source last-fired guard suppresses repeats.
        engine = EventEngine()
        batches = []
        engine.add_dynamic_source(lambda: 3.0)
        engine.batch_hook = lambda: batches.append(engine.now)
        engine.run(until=10.0)
        assert batches == [3.0]
        assert engine.dynamic_wakeups == 1

    def test_heap_event_at_same_time_counts_as_heap_drive(self):
        engine = EventEngine()
        fired = []
        engine.schedule(4.0, lambda: fired.append("heap"))
        engine.add_dynamic_source(lambda: 4.0)
        engine.run(until=10.0)
        assert fired == ["heap"]
        # The heap supplied the batch time; the source rode along.
        assert engine.dynamic_wakeups == 0

    def test_past_requests_are_clamped_to_now(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run(until=6.0)
        batches = []
        engine.add_dynamic_source(lambda: 1.0 if not batches else None)
        engine.batch_hook = lambda: batches.append(engine.now)
        engine.run(until=10.0)
        # The stale request (t=1 < now=6) fires immediately at now, not
        # in the past.
        assert batches == [6.0]
