"""Socket event log container."""

import pytest

from repro.instrumentation.events import (
    DIRECTION_RECV,
    DIRECTION_SEND,
    SocketEventLog,
)


def append_sample(log: SocketEventLog, timestamp: float = 1.0, server: int = 0,
                  direction: int = DIRECTION_SEND, num_bytes: float = 100.0) -> None:
    log.append(
        timestamp=timestamp, server=server, direction=direction,
        src=0, src_port=8400, dst=1, dst_port=50000, protocol=6,
        num_bytes=num_bytes, job_id=3, phase_index=1,
    )


class TestAppendFinalize:
    def test_append_then_len(self):
        log = SocketEventLog()
        append_sample(log)
        append_sample(log)
        assert len(log) == 2

    def test_finalize_sorts_by_time(self):
        log = SocketEventLog()
        append_sample(log, timestamp=5.0)
        append_sample(log, timestamp=1.0)
        log.finalize()
        times = log.column("timestamp")
        assert list(times) == [1.0, 5.0]

    def test_append_after_finalize_rejected(self):
        log = SocketEventLog()
        log.finalize()
        with pytest.raises(RuntimeError):
            append_sample(log)

    def test_finalize_idempotent(self):
        log = SocketEventLog()
        append_sample(log)
        log.finalize()
        log.finalize()
        assert len(log) == 1

    def test_read_before_finalize_rejected(self):
        log = SocketEventLog()
        append_sample(log)
        with pytest.raises(RuntimeError):
            log.column("timestamp")

    def test_unknown_column_rejected(self):
        log = SocketEventLog()
        log.finalize()
        with pytest.raises(KeyError):
            log.column("nope")


class TestViews:
    def test_row_materialisation(self):
        log = SocketEventLog()
        append_sample(log, timestamp=2.0, num_bytes=64.0)
        log.finalize()
        event = log.row(0)
        assert event.timestamp == 2.0
        assert event.num_bytes == 64.0
        assert event.src_port == 8400
        assert event.job_id == 3

    def test_select(self):
        log = SocketEventLog()
        append_sample(log, server=0)
        append_sample(log, server=1)
        log.finalize()
        subset = log.events_on_server(1)
        assert len(subset) == 1
        assert subset.column("server")[0] == 1

    def test_total_bytes_send_only_by_default(self):
        log = SocketEventLog()
        append_sample(log, direction=DIRECTION_SEND, num_bytes=10.0)
        append_sample(log, direction=DIRECTION_RECV, num_bytes=10.0)
        log.finalize()
        assert log.total_bytes() == 10.0
        assert log.total_bytes(direction=None) == 20.0
        assert log.total_bytes(direction=DIRECTION_RECV) == 10.0

    def test_time_span(self):
        log = SocketEventLog()
        append_sample(log, timestamp=3.0)
        append_sample(log, timestamp=8.0)
        log.finalize()
        assert log.time_span() == (3.0, 8.0)

    def test_time_span_empty(self):
        log = SocketEventLog()
        log.finalize()
        assert log.time_span() == (0.0, 0.0)
