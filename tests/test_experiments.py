"""Experiment harness: every figure runs and shows the paper's shape.

These tests encode the qualitative claims of each figure as assertions
on the small campaign — the same claims the benchmark suite asserts on
the standard campaign.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    format_table,
    table_s2,
)


class TestFig02:
    def test_locality_amplified(self, dataset):
        result = fig02.run(dataset)
        assert result.locality_amplification > 1.5

    def test_shares_sum_to_one(self, dataset):
        summary = fig02.run(dataset).summary
        total = (
            summary.in_rack_byte_fraction
            + summary.cross_rack_byte_fraction
            + summary.external_byte_fraction
        )
        assert total == pytest.approx(1.0)

    def test_scatter_gather_present(self, dataset):
        assert fig02.run(dataset).summary.scatter_gather_server_count > 0

    def test_table_renders(self, dataset):
        result = fig02.run(dataset)
        text = format_table("F2", result.rows())
        assert "in-rack" in text


class TestFig03:
    def test_silence_dominates_and_cross_rack_is_quieter(self, dataset):
        result = fig03.run(dataset)
        assert result.prob_zero_cross_rack > result.prob_zero_in_rack
        assert result.prob_zero_in_rack > 0.5
        assert result.prob_zero_cross_rack > 0.8

    def test_heavy_tailed_range(self, dataset):
        low, high = fig03.run(dataset).log_range
        assert high - low > 6.0  # many orders of magnitude

    def test_in_rack_pairs_exchange_more(self, dataset):
        result = fig03.run(dataset)
        assert result.in_rack_median_log >= result.cross_rack_median_log - 0.5


class TestFig04:
    def test_medians_small(self, dataset):
        result = fig04.run(dataset)
        assert 0 <= result.median_in_rack <= 6
        assert 0 <= result.median_cross_rack <= 20

    def test_bimodality_signals(self, dataset):
        result = fig04.run(dataset)
        assert result.frac_talking_to_most_of_rack > 0.02
        assert 0.0 <= result.frac_silent_outside_rack <= 1.0


class TestFig05:
    def test_congestion_widespread(self, dataset):
        result = fig05.run(dataset)
        assert result.frac_links_hot_10s > 0.3
        assert result.frac_links_hot_100s <= result.frac_links_hot_10s

    def test_short_congestion_correlated(self, dataset):
        assert fig05.run(dataset).peak_simultaneous >= 3

    def test_threshold_sweep_qualitatively_similar(self, dataset):
        """Paper: choosing 90% or 95% yields qualitatively similar
        results — coverage shrinks monotonically but stays positive."""
        at_70 = fig05.run(dataset, threshold=0.7).frac_links_hot_10s
        at_90 = fig05.run(dataset, threshold=0.9).frac_links_hot_10s
        assert at_90 <= at_70
        assert at_90 > 0.0


class TestFig06:
    def test_most_episodes_short(self, dataset):
        result = fig06.run(dataset)
        assert result.frac_short > 0.5

    def test_long_tail_exists(self, dataset):
        result = fig06.run(dataset)
        assert result.summary.episodes_over_10s > 0
        assert result.longest > 10.0


class TestFig07:
    def test_rates_not_appreciably_different(self, dataset):
        result = fig07.run(dataset)
        assert 0.3 < result.median_ratio < 3.0
        assert result.max_cdf_gap() < 0.35


class TestFig08:
    def test_uplift_positive(self, dataset):
        result = fig08.run(dataset)
        pooled = result.pooled_uplift_ratio
        assert pooled > 1.0 or pooled == float("inf")

    def test_day_structure(self, dataset):
        result = fig08.run(dataset)
        assert len(result.study.days) >= 2


class TestFig09:
    def test_flows_short(self, dataset):
        result = fig09.run(dataset)
        assert result.stats.frac_flows_under_10s > 0.6
        assert result.stats.frac_flows_over_200s < 0.05

    def test_bytes_in_short_flows(self, dataset):
        assert fig09.run(dataset).stats.frac_bytes_under_25s > 0.4


class TestFig10:
    def test_churn_large_at_both_scales(self, dataset):
        result = fig10.run(dataset)
        assert result.median_change_10s > 0.2
        assert result.median_change_100s > 0.2

    def test_peaks_approach_bisection(self, dataset):
        assert fig10.run(dataset).stats.peak_over_bisection > 0.2


class TestFig11:
    def test_mode_spacing_matches_quantum(self, dataset):
        result = fig11.run(dataset)
        assert result.mode_spacing == pytest.approx(
            result.expected_quantum, rel=0.5
        )

    def test_modes_detected(self, dataset):
        assert fig11.run(dataset).stats.server_modes.size >= 2

    def test_long_tail(self, dataset):
        assert fig11.run(dataset).server_tail > 1.0


class TestFig12:
    def test_tomogravity_errors_substantial(self, dataset):
        result = fig12.run(dataset)
        assert result.median_tomogravity_error > 0.1

    def test_sparsity_worse_than_tomogravity(self, dataset):
        result = fig12.run(dataset)
        assert result.median_sparsity_error > result.median_tomogravity_error

    def test_job_prior_no_dramatic_win(self, dataset):
        result = fig12.run(dataset)
        assert result.median_job_prior_error > 0.3 * result.median_tomogravity_error

    def test_error_cdfs_available(self, dataset):
        cdfs = fig12.run(dataset).error_cdfs()
        assert cdfs["tomogravity"].n > 0


class TestFig13:
    def test_windows_populated(self, dataset):
        # The small campaign is short, so use a finer TM window to get a
        # usable number of scatter points.
        result = fig13.run(dataset, window=30.0)
        assert result.errors.size >= 5
        assert result.sparsity_fractions.size == result.errors.size

    def test_trend_not_positive(self, dataset):
        """Sparser truth should not make tomogravity *better*."""
        correlation = fig13.run(dataset, window=30.0).correlation
        assert not np.isfinite(correlation) or correlation < 0.5


class TestFig14:
    def test_method_ordering(self, dataset):
        """Truth sits between dense tomogravity and over-sparse MILP."""
        result = fig14.run(dataset)
        truth = result.median_fraction("truth")
        tomogravity = result.median_fraction("tomogravity")
        sparse = result.median_fraction("sparsity")
        assert sparse < truth
        assert tomogravity > 0.7 * truth

    def test_milp_misses_heavy_hitters(self, dataset):
        result = fig14.run(dataset)
        nonzeros = result.study.sparsity_nonzeros()
        if nonzeros:
            assert result.milp_heavy_hitter_overlap <= np.median(nonzeros)


class TestTableS2:
    def test_overhead_small(self, dataset):
        result = table_s2.run(dataset)
        assert result.report.cpu_utilization_increase_pct < 5.0
        assert result.report.throughput_drop_mbps < 1.0

    def test_compression_at_least_10x(self, dataset):
        assert table_s2.run(dataset).report.compression_ratio >= 10.0
