"""Experiment infrastructure: configs, dataset memoisation, reporting."""

import numpy as np

from repro.experiments.common import (
    DAY_LENGTH,
    NUM_DAYS,
    build_dataset,
    clear_dataset_cache,
    small_config,
    standard_config,
)
from repro.experiments.reporting import Row, format_table


class TestConfigs:
    def test_standard_covers_eight_days(self):
        config = standard_config()
        assert config.duration == NUM_DAYS * DAY_LENGTH
        assert len(config.workload.day_load_factors) == NUM_DAYS

    def test_weekend_is_light(self):
        factors = standard_config().workload.day_load_factors
        weekday_mean = np.mean([factors[i] for i in range(5)])
        weekend_mean = np.mean([factors[5], factors[6]])
        assert weekend_mean < 0.5 * weekday_mean

    def test_uplinks_oversubscribed(self):
        cluster = standard_config().cluster
        rack_capacity = cluster.servers_per_rack * cluster.server_nic_capacity
        assert cluster.tor_uplink_capacity < rack_capacity

    def test_seeds_differ(self):
        assert standard_config(1).seed != standard_config(2).seed

    def test_small_config_is_smaller(self):
        small = small_config()
        standard = standard_config()
        assert small.cluster.num_servers < standard.cluster.num_servers
        assert small.duration < standard.duration


class TestDatasetCache:
    def test_memoised(self, dataset):
        again = build_dataset(small_config())
        assert again is dataset

    def test_cache_key_distinguishes_seeds(self):
        from repro.experiments.cache import config_fingerprint

        assert config_fingerprint(small_config(seed=1)) != config_fingerprint(
            small_config(seed=2)
        )

    def test_cache_key_stable(self):
        from repro.experiments.cache import config_fingerprint

        assert config_fingerprint(small_config()) == config_fingerprint(
            small_config()
        )

    def test_clear_cache_forgets(self, dataset):
        from repro.experiments.cache import config_fingerprint
        from repro.experiments.common import _CACHE

        # Only inspect bookkeeping; never rebuild a campaign here.
        key = config_fingerprint(dataset.config)
        assert _CACHE.get(key) is dataset
        try:
            clear_dataset_cache()
            assert len(_CACHE) == 0
        finally:
            _CACHE.put(key, dataset)

    def test_observed_utilization_shape(self, dataset):
        observed = dataset.observed_utilization
        assert observed.shape[0] == dataset.observed_links.size
        assert observed.shape[1] == dataset.utilization.shape[1]

    def test_day_length_exposed(self, dataset):
        assert dataset.day_length == dataset.config.workload.day_length


class TestReporting:
    def test_row_tuple(self):
        row = Row("m", "p", "v")
        assert row.as_tuple() == ("m", "p", "v")

    def test_table_alignment(self):
        rows = [Row("a", "1", "2"), Row("longer metric", "x", "y")]
        table = format_table("T", rows)
        lines = table.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[1:]}) <= 2  # header+rule+rows align

    def test_empty_table(self):
        table = format_table("T", [])
        assert "metric" in table
