"""Extension experiments E1 (role prior) and E2 (sampled NetFlow)."""

import numpy as np
import pytest

from repro.experiments import ext_roleprior, ext_sampling


class TestRolePriorStudy:
    @pytest.fixture(scope="class")
    def study(self, dataset):
        # Finer windows on the short test campaign.
        return ext_roleprior.run(dataset, window=30.0)

    def test_windows_compared(self, study):
        assert study.gravity_errors.size >= 3
        assert study.gravity_errors.size == study.job_errors.size
        assert study.gravity_errors.size == study.role_errors.size

    def test_role_prior_not_worse_than_job(self, study):
        assert study.median("role") <= study.median("job") * 1.15

    def test_errors_positive(self, study):
        assert (study.gravity_errors >= 0).all()
        assert (study.role_errors >= 0).all()

    def test_rows_render(self, study):
        rows = study.rows()
        assert len(rows) == 4
        assert "role prior" in rows[2].metric


class TestSamplingStudy:
    @pytest.fixture(scope="class")
    def study(self, dataset):
        return ext_sampling.run(dataset)

    def test_detection_monotone_in_rate(self, study):
        fractions = [r["detected_fraction"] for r in study.reports]
        assert fractions == sorted(fractions, reverse=True)

    def test_coarse_sampling_misses_flows(self, study):
        assert study.detected_fraction(1e-4) < study.detected_fraction(1e-2)
        assert study.detected_fraction(1e-4) < 0.95

    def test_volume_estimable_at_all_rates(self, study):
        for report in study.reports:
            ratio = report["estimated_total_bytes"] / report["true_total_bytes"]
            assert ratio == pytest.approx(1.0, rel=0.2)

    def test_unknown_rate_raises(self, study):
        with pytest.raises(KeyError):
            study.detected_fraction(0.5)

    def test_rows_render(self, study):
        assert len(study.rows()) == 2 * len(study.reports)
