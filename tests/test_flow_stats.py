"""Flow duration and inter-arrival statistics (Figs 9, 11)."""

import numpy as np
import pytest

from repro.core.flow_stats import (
    detect_periodic_modes,
    duration_stats,
    estimate_mode_spacing,
    interarrival_stats,
)
from repro.core.flows import FlowTable


def flows_with(durations, sizes=None, starts=None, srcs=None, dsts=None):
    n = len(durations)
    starts = np.asarray(starts if starts is not None else np.zeros(n), dtype=float)
    durations = np.asarray(durations, dtype=float)
    return FlowTable(
        src=np.asarray(srcs if srcs is not None else np.zeros(n), dtype=np.int64),
        src_port=np.full(n, 8400, dtype=np.int64),
        dst=np.asarray(dsts if dsts is not None else np.ones(n), dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=starts,
        end_time=starts + durations,
        num_bytes=np.asarray(sizes if sizes is not None else np.ones(n), dtype=float),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.zeros(n, dtype=np.int64),
        phase_index=np.zeros(n, dtype=np.int64),
    )


class TestDurationStats:
    def test_fractions(self):
        stats = duration_stats(flows_with([1.0, 5.0, 50.0, 300.0]))
        assert stats.frac_flows_under_10s == pytest.approx(0.5)
        assert stats.frac_flows_over_200s == pytest.approx(0.25)

    def test_byte_weighting(self):
        stats = duration_stats(
            flows_with([1.0, 100.0], sizes=[900.0, 100.0])
        )
        assert stats.frac_bytes_under_25s == pytest.approx(0.9)

    def test_empty(self):
        stats = duration_stats(flows_with([]))
        assert stats.total_flows == 0
        assert stats.frac_flows_under_10s == 0.0

    def test_totals(self):
        stats = duration_stats(flows_with([1.0, 2.0], sizes=[10.0, 20.0]))
        assert stats.total_flows == 2
        assert stats.total_bytes == 30.0


class TestInterarrival:
    def test_cluster_gaps(self, tiny_topology):
        flows = flows_with([1.0] * 3, starts=[0.0, 1.0, 3.0])
        stats = interarrival_stats(flows, tiny_topology)
        assert stats.cluster.n == 2  # gaps 1.0 and 2.0
        assert stats.cluster.median() == pytest.approx(1.0)

    def test_per_server_pools_both_endpoints(self, tiny_topology):
        flows = flows_with(
            [1.0] * 3,
            starts=[0.0, 1.0, 2.0],
            srcs=[0, 5, 0],
            dsts=[5, 0, 5],
        )
        stats = interarrival_stats(flows, tiny_topology)
        # servers 0 and 5 each see all three flows -> four gaps pooled
        assert stats.per_server.n >= 1

    def test_cluster_rate(self, tiny_topology):
        flows = flows_with([0.1] * 11, starts=np.linspace(0, 10, 11))
        stats = interarrival_stats(flows, tiny_topology)
        assert stats.median_cluster_rate == pytest.approx(1.0)

    def test_empty(self, tiny_topology):
        stats = interarrival_stats(flows_with([]), tiny_topology)
        assert stats.cluster.n == 0
        assert stats.median_cluster_rate == 0.0


class TestModeDetection:
    def _periodic_gaps(self, rng, period=0.015, count=4000):
        quanta = rng.geometric(0.5, size=count)
        jitter = rng.uniform(0, 0.0008, size=count)
        return quanta * period + jitter

    def test_detects_periodic_modes(self, rng):
        gaps = self._periodic_gaps(rng)
        modes = detect_periodic_modes(gaps)
        assert modes.size >= 2
        # first mode near the period
        assert abs(modes[0] - 0.015) < 0.002

    def test_spacing_estimate(self, rng):
        gaps = self._periodic_gaps(rng)
        spacing = estimate_mode_spacing(gaps)
        assert spacing == pytest.approx(0.015, abs=0.002)

    def test_no_structure_in_exponential(self, rng):
        gaps = rng.exponential(0.02, size=4000)
        modes = detect_periodic_modes(gaps)
        assert modes.size <= 3  # essentially nothing periodic

    def test_too_few_samples(self):
        assert detect_periodic_modes(np.array([0.01, 0.02])).size == 0
        assert np.isnan(estimate_mode_spacing(np.array([0.01, 0.02])))

    def test_spacing_robust_to_uneven_heights(self, rng):
        """Decaying mode heights (like real stop-and-go traffic) must not
        corrupt the spacing estimate."""
        parts = []
        for k, weight in enumerate((3000, 900, 300, 100), start=1):
            parts.append(0.015 * k + rng.uniform(0, 0.0008, size=weight))
        gaps = np.concatenate(parts)
        spacing = estimate_mode_spacing(gaps)
        assert spacing == pytest.approx(0.015, abs=0.002)
