"""Flow reconstruction from socket events (paper §3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import reconstruct_flows
from repro.instrumentation.events import DIRECTION_RECV, DIRECTION_SEND, SocketEventLog


def build_log(events):
    log = SocketEventLog()
    for event in events:
        defaults = dict(
            server=0, direction=DIRECTION_SEND, src=0, src_port=8400,
            dst=1, dst_port=50000, protocol=6, num_bytes=100.0,
            job_id=1, phase_index=0,
        )
        defaults.update(event)
        log.append(**defaults)
    log.finalize()
    return log


class TestGrouping:
    def test_single_flow(self):
        log = build_log([{"timestamp": 0.0}, {"timestamp": 1.0}, {"timestamp": 2.0}])
        flows = reconstruct_flows(log)
        assert len(flows) == 1
        assert flows.num_bytes[0] == 300.0
        assert flows.start_time[0] == 0.0
        assert flows.end_time[0] == 2.0
        assert flows.num_events[0] == 3

    def test_distinct_tuples_are_distinct_flows(self):
        log = build_log([
            {"timestamp": 0.0, "dst_port": 50000},
            {"timestamp": 0.1, "dst_port": 50001},
        ])
        assert len(reconstruct_flows(log)) == 2

    def test_inactivity_timeout_splits(self):
        log = build_log([
            {"timestamp": 0.0},
            {"timestamp": 10.0},
            {"timestamp": 100.0},  # 90 s gap > 60 s timeout
        ])
        flows = reconstruct_flows(log, inactivity_timeout=60.0)
        assert len(flows) == 2
        assert flows.num_events.tolist() == [2, 1]

    def test_timeout_boundary_inclusive(self):
        log = build_log([{"timestamp": 0.0}, {"timestamp": 60.0}])
        assert len(reconstruct_flows(log, inactivity_timeout=60.0)) == 1
        assert len(reconstruct_flows(log, inactivity_timeout=59.9)) == 2

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            reconstruct_flows(build_log([]), inactivity_timeout=0.0)

    def test_empty_log(self):
        flows = reconstruct_flows(build_log([]))
        assert len(flows) == 0
        assert flows.total_bytes() == 0.0

    def test_empty_log_dtypes_match_nonempty(self):
        # Regression: the empty path must hand back the same dtypes as a
        # populated one, so downstream concatenation never upcasts.
        empty = reconstruct_flows(build_log([]))
        full = reconstruct_flows(build_log([{"timestamp": 0.0}]))
        for name in ("src", "src_port", "dst", "dst_port", "protocol",
                     "start_time", "end_time", "num_bytes", "num_events",
                     "job_id", "phase_index"):
            assert getattr(empty, name).dtype == getattr(full, name).dtype, name


class TestSendSidePreference:
    def test_recv_duplicates_dropped(self):
        log = build_log([
            {"timestamp": 0.0, "direction": DIRECTION_SEND, "server": 0},
            {"timestamp": 0.0, "direction": DIRECTION_RECV, "server": 1},
        ])
        flows = reconstruct_flows(log)
        assert len(flows) == 1
        assert flows.num_bytes[0] == 100.0  # not double counted

    def test_recv_only_tuples_kept(self):
        """External senders are invisible; their receive events count."""
        log = build_log([
            {"timestamp": 0.0, "direction": DIRECTION_RECV, "src": 99, "server": 1},
        ])
        flows = reconstruct_flows(log)
        assert len(flows) == 1
        assert flows.src[0] == 99

    def test_mixed_tuples(self):
        log = build_log([
            {"timestamp": 0.0, "direction": DIRECTION_SEND},
            {"timestamp": 0.0, "direction": DIRECTION_RECV, "server": 1},
            {"timestamp": 1.0, "direction": DIRECTION_RECV, "src": 99,
             "dst_port": 50009, "server": 1},
        ])
        flows = reconstruct_flows(log)
        assert len(flows) == 2
        assert flows.total_bytes() == 200.0


class TestDerivedColumns:
    def test_duration_floor(self):
        log = build_log([{"timestamp": 5.0}])
        flows = reconstruct_flows(log)
        assert flows.durations[0] == pytest.approx(1e-3)
        assert np.isfinite(flows.rates[0])

    def test_rates(self):
        log = build_log([{"timestamp": 0.0}, {"timestamp": 2.0}])
        flows = reconstruct_flows(log)
        assert flows.rates[0] == pytest.approx(200.0 / 2.0)

    def test_job_tags_survive(self):
        log = build_log([{"timestamp": 0.0, "job_id": 9, "phase_index": 4}])
        flows = reconstruct_flows(log)
        assert flows.job_id[0] == 9
        assert flows.phase_index[0] == 4

    def test_select_and_involving(self):
        log = build_log([
            {"timestamp": 0.0, "src": 0, "dst": 1},
            {"timestamp": 0.0, "src": 2, "dst": 3, "dst_port": 50002},
        ])
        flows = reconstruct_flows(log)
        only = flows.involving_server(2)
        assert len(only) == 1
        assert only.src[0] == 2


class TestConservation:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=500),   # timestamp
                st.integers(min_value=0, max_value=3),   # tuple choice
                st.floats(min_value=1, max_value=1e6),   # bytes
            ),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_bytes_conserved_and_flows_partition_events(self, rows):
        events = [
            {
                "timestamp": t,
                "dst_port": 50000 + tup,
                "num_bytes": b,
            }
            for t, tup, b in rows
        ]
        log = build_log(events)
        flows = reconstruct_flows(log, inactivity_timeout=60.0)
        assert flows.total_bytes() == pytest.approx(sum(b for _, _, b in rows))
        assert int(flows.num_events.sum()) == len(rows)
        # Flow boundaries respect the timeout: within each flow no gap
        # exceeds it; flows of one tuple are separated by more.
        assert (flows.end_time >= flows.start_time).all()
