"""Workload schedule generation."""

import numpy as np
import pytest

from repro.workload.generator import WorkloadConfig, generate_schedule


class TestConfigValidation:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(job_arrival_rate=-1)

    def test_unknown_template_weight_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(template_weights={"nope": 1.0})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(template_weights={"interactive": 0.0})

    def test_connection_settings_validated(self):
        with pytest.raises(ValueError):
            WorkloadConfig(max_connections=0)
        with pytest.raises(ValueError):
            WorkloadConfig(connection_quantum=0.0)

    def test_day_profile_validated(self):
        with pytest.raises(ValueError):
            WorkloadConfig(day_load_factors=())
        with pytest.raises(ValueError):
            WorkloadConfig(day_length=0.0)


class TestSchedule:
    def test_deterministic(self, rng):
        config = WorkloadConfig(job_arrival_rate=0.5)
        first = generate_schedule(config, 100.0, np.random.default_rng(1))
        second = generate_schedule(config, 100.0, np.random.default_rng(1))
        assert [j.submit_time for j in first.jobs] == [
            j.submit_time for j in second.jobs
        ]

    def test_arrival_rate_approximate(self):
        config = WorkloadConfig(job_arrival_rate=0.5)
        schedule = generate_schedule(config, 4000.0, np.random.default_rng(2))
        assert len(schedule.jobs) == pytest.approx(2000, rel=0.15)

    def test_times_within_duration(self, rng):
        config = WorkloadConfig(job_arrival_rate=1.0, evacuation_rate=0.05,
                                ingestion_rate=0.05)
        schedule = generate_schedule(config, 50.0, rng, external_hosts=[99])
        for job in schedule.jobs:
            assert 0 <= job.submit_time < 50.0
        for event in schedule.ingestions:
            assert 0 <= event.time < 50.0
        for event in schedule.evacuations:
            assert 0 <= event.time < 50.0

    def test_input_sizes_within_template_range(self, rng):
        config = WorkloadConfig(job_arrival_rate=1.0)
        schedule = generate_schedule(config, 200.0, rng)
        for job in schedule.jobs:
            template = job.template
            assert template.min_input_bytes <= job.input_bytes <= template.max_input_bytes

    def test_mix_follows_weights(self):
        config = WorkloadConfig(
            job_arrival_rate=2.0,
            template_weights={"interactive": 0.9, "production": 0.1},
        )
        schedule = generate_schedule(config, 500.0, np.random.default_rng(3))
        names = [j.template.name for j in schedule.jobs]
        frac_interactive = names.count("interactive") / len(names)
        assert frac_interactive == pytest.approx(0.9, abs=0.05)

    def test_no_ingestion_without_external_hosts(self, rng):
        config = WorkloadConfig(ingestion_rate=0.5)
        schedule = generate_schedule(config, 100.0, rng, external_hosts=None)
        assert schedule.ingestions == []

    def test_day_profile_modulates_load(self):
        config = WorkloadConfig(
            job_arrival_rate=1.0,
            day_load_factors=(1.0, 0.1),
            day_length=500.0,
        )
        schedule = generate_schedule(config, 1000.0, np.random.default_rng(4))
        day0 = sum(1 for j in schedule.jobs if j.submit_time < 500.0)
        day1 = len(schedule.jobs) - day0
        assert day0 > 3 * day1

    def test_zero_duration_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_schedule(WorkloadConfig(), 0.0, rng)

    def test_num_events(self, rng):
        config = WorkloadConfig(job_arrival_rate=0.5, evacuation_rate=0.05)
        schedule = generate_schedule(config, 100.0, rng, external_hosts=[99])
        assert schedule.num_events == (
            len(schedule.jobs) + len(schedule.ingestions) + len(schedule.evacuations)
        )
