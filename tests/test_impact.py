"""Read-failure impact analysis (Fig 8)."""

import numpy as np
import pytest

from repro.core.flows import FlowTable
from repro.core.impact import DailyImpact, ImpactStudy, read_failure_impact
from repro.instrumentation.applog import ApplicationLog
from repro.instrumentation.collector import SERVICE_PORTS


def make_flows(rows):
    """rows: (src, dst, start, end, job_id, src_port)."""
    n = len(rows)
    cols = list(zip(*rows)) if rows else [[]] * 6
    return FlowTable(
        src=np.array(cols[0], dtype=np.int64),
        src_port=np.array(cols[5], dtype=np.int64),
        dst=np.array(cols[1], dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=np.array(cols[2], dtype=float),
        end_time=np.array(cols[3], dtype=float),
        num_bytes=np.ones(n),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.array(cols[4], dtype=np.int64),
        phase_index=np.zeros(n, dtype=np.int64),
    )


FETCH = SERVICE_PORTS["fetch"]
CONTROL = SERVICE_PORTS["control"]


class TestDailyImpact:
    def test_uplift_percent(self):
        day = DailyImpact(day=0, jobs_overlapping=10, jobs_clear=10,
                          failure_rate_overlapping=0.2, failure_rate_clear=0.1)
        assert day.uplift_percent == pytest.approx(100.0)

    def test_zero_clear_rate_inf(self):
        day = DailyImpact(day=0, jobs_overlapping=10, jobs_clear=10,
                          failure_rate_overlapping=0.2, failure_rate_clear=0.0)
        assert day.uplift_percent == float("inf")

    def test_empty_group_nan(self):
        day = DailyImpact(day=0, jobs_overlapping=0, jobs_clear=10,
                          failure_rate_overlapping=0.0, failure_rate_clear=0.1)
        assert np.isnan(day.uplift_percent)

    def test_negative_uplift(self):
        day = DailyImpact(day=0, jobs_overlapping=5, jobs_clear=5,
                          failure_rate_overlapping=0.01, failure_rate_clear=0.1)
        assert day.uplift_percent == pytest.approx(-90.0)


class TestStudyAggregates:
    def test_median_skips_nonfinite(self):
        study = ImpactStudy(days=[
            DailyImpact(0, 1, 1, 0.2, 0.1),   # +100%
            DailyImpact(1, 1, 1, 0.3, 0.1),   # +200%
            DailyImpact(2, 1, 1, 0.2, 0.0),   # inf, skipped
        ])
        assert study.median_uplift_ratio == pytest.approx(2.5)

    def test_pooled_ratio(self):
        study = ImpactStudy(days=[
            DailyImpact(0, 10, 10, 0.2, 0.0),
            DailyImpact(1, 10, 10, 0.4, 0.2),
        ])
        # pooled: overlap 6/20 = 0.3, clear 2/20 = 0.1
        assert study.pooled_uplift_ratio == pytest.approx(3.0)

    def test_pooled_nan_when_empty(self):
        assert np.isnan(ImpactStudy(days=[]).pooled_uplift_ratio)


class TestEndToEnd:
    def test_correlation_recovered(self, tiny_topology, tiny_router):
        """Jobs whose fetch flows crossed a hot link have higher failure
        rate; the analysis must recover that from logs alone."""
        util = np.zeros((tiny_topology.num_links, 100))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 10:20] = 0.95

        applog = ApplicationLog()
        flows = []
        # Jobs 0-4 overlap congestion and fail; jobs 5-9 are clear.
        for job in range(5):
            applog.record_job_start(job, f"j{job}", "report", 12.0)
            flows.append((0, 1, 12.0, 15.0, job, FETCH))
            applog.record_read_failure(job, job * 10, src=0, dst=1, time=14.0)
        for job in range(5, 10):
            applog.record_job_start(job, f"j{job}", "report", 30.0)
            flows.append((2, 3, 30.0, 33.0, job, FETCH))

        study = read_failure_impact(
            applog, make_flows(flows), tiny_router, util, day_length=100.0
        )
        day = study.days[0]
        assert day.jobs_overlapping == 5
        assert day.jobs_clear == 5
        assert day.failure_rate_overlapping == 1.0
        assert day.failure_rate_clear == 0.0

    def test_control_flows_do_not_qualify(self, tiny_topology, tiny_router):
        """Long-lived control connections crossing a hot link must not
        mark a job as congestion-exposed."""
        util = np.zeros((tiny_topology.num_links, 100))
        hot_link = tiny_router.path_links(0, 1)[0]
        util[hot_link, 10:20] = 0.95
        applog = ApplicationLog()
        applog.record_job_start(0, "j0", "report", 5.0)
        flows = make_flows([(0, 1, 0.0, 90.0, 0, CONTROL)])
        study = read_failure_impact(applog, flows, tiny_router, util,
                                    day_length=100.0)
        assert study.days[0].jobs_overlapping == 0
        assert study.days[0].jobs_clear == 1

    def test_days_split_by_start_time(self, tiny_topology, tiny_router):
        util = np.zeros((tiny_topology.num_links, 10))
        applog = ApplicationLog()
        applog.record_job_start(0, "a", "report", 10.0)
        applog.record_job_start(1, "b", "report", 160.0)
        study = read_failure_impact(applog, make_flows([]), tiny_router, util,
                                    day_length=150.0)
        assert [d.day for d in study.days] == [0, 1]

    def test_invalid_day_length(self, tiny_topology, tiny_router):
        with pytest.raises(ValueError):
            read_failure_impact(ApplicationLog(), make_flows([]), tiny_router,
                                np.zeros((1, 1)), day_length=0.0)
