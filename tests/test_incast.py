"""Incast precondition audit (§4.4) and the measured-collapse report."""

import numpy as np
import pytest

from repro.core.flows import FlowTable
from repro.core.incast import incast_audit, incast_report, max_concurrent_inbound


def make_flows(rows):
    """rows: (src, dst, start, end, job)."""
    n = len(rows)
    cols = list(zip(*rows)) if rows else [[]] * 5
    return FlowTable(
        src=np.array(cols[0], dtype=np.int64),
        src_port=np.full(n, 8400, dtype=np.int64),
        dst=np.array(cols[1], dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=np.array(cols[2], dtype=float),
        end_time=np.array(cols[3], dtype=float),
        num_bytes=np.ones(n),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.array(cols[4], dtype=np.int64),
        phase_index=np.zeros(n, dtype=np.int64),
    )


class TestFanIn:
    def test_concurrent_counted(self):
        flows = make_flows([
            (1, 0, 0.0, 2.0, 0),
            (2, 0, 1.0, 3.0, 0),
            (3, 0, 1.5, 1.8, 0),
        ])
        assert max_concurrent_inbound(flows, server=0) == 3

    def test_sequential_not_concurrent(self):
        flows = make_flows([
            (1, 0, 0.0, 1.0, 0),
            (2, 0, 2.0, 3.0, 0),
        ])
        assert max_concurrent_inbound(flows, server=0) == 1

    def test_no_inbound(self):
        flows = make_flows([(0, 1, 0.0, 1.0, 0)])
        assert max_concurrent_inbound(flows, server=5) == 0


class TestAudit:
    def test_locality_fractions(self, tiny_topology):
        other_rack = tiny_topology.spec.servers_per_rack
        flows = make_flows([
            (0, 1, 0.0, 1.0, 0),           # in rack (and in vlan)
            (0, other_rack, 0.0, 1.0, 0),  # in vlan, not rack
        ])
        audit = incast_audit(flows, tiny_topology)
        assert audit.frac_flows_in_rack == pytest.approx(0.5)
        assert audit.frac_flows_in_vlan == pytest.approx(1.0)

    def test_cap_exceedance(self, tiny_topology):
        rows = [(i + 1, 0, 0.0, 1.0, 0) for i in range(6)]
        audit = incast_audit(make_flows(rows), tiny_topology, connection_cap=4)
        assert audit.peak_fan_in == 6
        assert audit.frac_servers_exceeding_cap == pytest.approx(
            1 / tiny_topology.num_servers
        )

    def test_job_multiplexing(self, tiny_topology):
        flows = make_flows([
            (0, 1, 0.0, 5.0, 0),
            (2, 3, 0.0, 5.0, 1),
            (4, 5, 0.0, 5.0, 2),
        ])
        audit = incast_audit(flows, tiny_topology)
        assert audit.median_concurrent_jobs == pytest.approx(3.0)

    def test_empty_flows(self, tiny_topology):
        audit = incast_audit(make_flows([]), tiny_topology)
        assert audit.peak_fan_in == 0
        assert audit.median_concurrent_jobs == 0.0

    def test_campaign_preconditions_hold(self, dataset):
        """On the simulated campaign the paper's observations hold: most
        exchanges are local or VLAN-contained and fan-in stays moderate
        relative to the cluster size."""
        audit = incast_audit(
            dataset.flows, dataset.result.topology,
            connection_cap=dataset.config.workload.max_connections,
        )
        assert audit.frac_flows_in_vlan >= audit.frac_flows_in_rack
        assert audit.median_concurrent_jobs >= 1.0
        assert audit.peak_fan_in < dataset.result.topology.num_servers


class TestIncastReport:
    """incast_report: asserted preconditions (fluid) vs measured collapse
    (queued)."""

    def test_fluid_report_is_asserted(self, dataset):
        report = incast_report(dataset.result)
        assert report["asserted"] is True
        assert report["transport_impl"] == dataset.config.transport_impl
        assert report["peak_fan_in"] >= 0
        assert 0.0 <= report["frac_servers_exceeding_cap"] <= 1.0

    def test_queued_report_is_measured(self):
        from repro.simulation.cc import incast_result

        result = incast_result("reno", 8, duration=10.0)
        report = incast_report(result)
        assert report["asserted"] is False
        assert report["transport_impl"] == "reno"
        assert report["peak_fan_in"] == 8
        # Reno at fan-in 8 collapses: RTOs fire and goodput craters.
        assert report["timeouts"] > 0
        assert report["worst_goodput_ratio"] < 0.3
        assert report["dropped_packets"] > 0

    def test_queued_dctcp_keeps_goodput(self):
        from repro.simulation.cc import incast_result

        result = incast_result("dctcp", 8, duration=10.0)
        report = incast_report(result)
        assert report["asserted"] is False
        assert report["timeouts"] == 0
        assert report["worst_goodput_ratio"] > 0.6
        assert report["marked_packets"] > 0
