"""Runtime job/phase/vertex entities."""

import pytest

from repro.util.units import GB
from repro.workload.job import (
    InputSource,
    JobRuntime,
    PhaseRuntime,
    VertexRuntime,
    VertexState,
)
from repro.workload.scope import STANDARD_TEMPLATES, JobSpec, compile_job


def compiled_job(template="report", input_bytes=2 * GB):
    spec = JobSpec(name="j", template=STANDARD_TEMPLATES[template],
                   input_bytes=input_bytes, submit_time=0.0)
    return compile_job(spec)


class TestInputSource:
    def test_requires_holder(self):
        with pytest.raises(ValueError):
            InputSource(servers=(), size=1.0)

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            InputSource(servers=(0,), size=-1.0)


class TestVertexRuntime:
    def test_total_input_bytes(self):
        vertex = VertexRuntime(vertex_id=0, job_id=0, phase_index=0)
        vertex.inputs.append(InputSource(servers=(0,), size=10.0))
        vertex.inputs.append(InputSource(servers=(1,), size=5.0))
        assert vertex.total_input_bytes == 15.0

    def test_initial_state(self):
        vertex = VertexRuntime(vertex_id=0, job_id=0, phase_index=0)
        assert vertex.state == VertexState.WAITING
        assert vertex.server is None


class TestPhaseRuntime:
    def test_not_done_until_full_complement(self):
        compiled = compiled_job().phases[0]
        phase = PhaseRuntime(compiled=compiled)
        # one finished vertex of several expected: not done
        vertex = VertexRuntime(vertex_id=0, job_id=0, phase_index=0)
        vertex.state = VertexState.DONE
        phase.vertices.append(vertex)
        assert compiled.num_vertices > 1
        assert not phase.done

    def test_done_when_all_spawned_and_terminal(self):
        compiled = compiled_job().phases[0]
        phase = PhaseRuntime(compiled=compiled)
        for index in range(compiled.num_vertices):
            vertex = VertexRuntime(vertex_id=index, job_id=0, phase_index=0)
            vertex.state = VertexState.DONE
            phase.vertices.append(vertex)
        assert phase.done
        assert phase.completed_vertices == compiled.num_vertices

    def test_failed_vertices_count_as_terminal(self):
        compiled = compiled_job("interactive", input_bytes=200e6).phases[1]
        phase = PhaseRuntime(compiled=compiled)
        for index in range(compiled.num_vertices):
            vertex = VertexRuntime(vertex_id=index, job_id=0, phase_index=1)
            vertex.state = VertexState.FAILED
            phase.vertices.append(vertex)
        assert phase.done
        assert phase.completed_vertices == 0


class TestJobRuntime:
    def test_names_derived_from_spec(self):
        job = JobRuntime(job_id=0, compiled=compiled_job())
        assert job.name == "j"
        assert job.template_name == "report"

    def test_servers_used_starts_empty(self):
        job = JobRuntime(job_id=0, compiled=compiled_job())
        assert job.servers_used == set()
