"""Link load tracking and SNMP aggregation."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.instrumentation.snmp import poll_link_counters
from repro.simulation.linkloads import LinkLoadTracker


@pytest.fixture()
def topo():
    return ClusterTopology(
        ClusterSpec(racks=2, servers_per_rack=2, racks_per_vlan=2, external_hosts=1)
    )


@pytest.fixture()
def tracker(topo):
    return LinkLoadTracker(topo, bin_width=1.0)


class TestAccumulation:
    def test_utilization_normalised_by_capacity(self, topo, tracker):
        link = topo.links[0]
        tracker.add_interval_bulk(
            np.array([link.link_id]), np.array([link.capacity / 2]), 0.0, 1.0
        )
        assert tracker.utilization_series(link.link_id)[0] == pytest.approx(0.5)

    def test_matrix_shape(self, topo, tracker):
        tracker.add_interval_bulk(np.array([0]), np.array([1.0]), 0.0, 3.5)
        matrix = tracker.utilization_matrix()
        assert matrix.shape == (topo.num_links, 4)

    def test_totals(self, tracker):
        tracker.add_interval_bulk(np.array([2]), np.array([7.0]), 0.0, 2.0)
        assert tracker.link_totals()[2] == pytest.approx(14.0)


class TestPathUtilization:
    def test_max_on_path(self, topo, tracker):
        first, second = 0, 1
        capacity = topo.links[first].capacity
        tracker.add_interval_bulk(np.array([first]), np.array([capacity]), 0.0, 1.0)
        tracker.add_interval_bulk(np.array([second]), np.array([capacity / 4]), 0.0, 1.0)
        assert tracker.max_utilization_on_path((first, second), 0.0, 1.0) == pytest.approx(1.0)

    def test_window_respected(self, topo, tracker):
        link = 0
        capacity = topo.links[link].capacity
        tracker.add_interval_bulk(np.array([link]), np.array([capacity]), 5.0, 6.0)
        assert tracker.max_utilization_on_path((link,), 0.0, 4.0) == 0.0
        assert tracker.max_utilization_on_path((link,), 5.0, 6.0) == pytest.approx(1.0)

    def test_empty_path(self, tracker):
        assert tracker.max_utilization_on_path((), 0.0, 1.0) == 0.0

    def test_inverted_window(self, tracker):
        assert tracker.max_utilization_on_path((0,), 5.0, 1.0) == 0.0


class TestSnmp:
    def test_poll_aggregates_bins(self, topo, tracker):
        tracker.add_interval_bulk(np.array([0]), np.array([3.0]), 0.0, 10.0)
        counters = tracker.snmp_counters(poll_interval=5.0)
        assert counters[0, 0] == pytest.approx(15.0)
        assert counters[0, 1] == pytest.approx(15.0)

    def test_poll_interval_must_be_multiple(self, tracker):
        tracker.add_interval_bulk(np.array([0]), np.array([1.0]), 0.0, 2.0)
        with pytest.raises(ValueError):
            tracker.snmp_counters(poll_interval=1.5)

    def test_poll_shorter_than_bin_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.snmp_counters(poll_interval=0.5)

    def test_dump_covers_inter_switch_links_only(self, topo, tracker):
        tracker.add_interval_bulk(np.array([0]), np.array([1.0]), 0.0, 2.0)
        dump = poll_link_counters(topo, tracker, poll_interval=1.0)
        expected = {link.link_id for link in topo.inter_switch_links()}
        assert set(dump.link_ids.tolist()) == expected

    def test_dump_utilization(self, topo, tracker):
        switch_link = topo.inter_switch_links()[0]
        tracker.add_interval_bulk(
            np.array([switch_link.link_id]),
            np.array([switch_link.capacity / 2]),
            0.0,
            2.0,
        )
        dump = poll_link_counters(topo, tracker, poll_interval=2.0)
        utilization = dump.utilization(topo.capacities)
        row = dump.link_ids.tolist().index(switch_link.link_id)
        assert utilization[row, 0] == pytest.approx(0.5)

    def test_counters_at(self, topo, tracker):
        switch_link = topo.inter_switch_links()[0]
        tracker.add_interval_bulk(
            np.array([switch_link.link_id]), np.array([8.0]), 0.0, 1.0
        )
        dump = poll_link_counters(topo, tracker, poll_interval=1.0)
        row = dump.link_ids.tolist().index(switch_link.link_id)
        assert dump.counters_at(0)[row] == pytest.approx(8.0)
        assert dump.poll_times[0] == 0.0
