"""The topology family and multi-path routing (fat-tree, leaf-spine).

Property tests over ``topology_kind x routing_impl``: equal-cost path
sets are loop-free walks connecting the right endpoints, ECMP hashing
is deterministic across processes and seeds, flowlet switching re-hashes
only after the idle gap, per-link byte accounting survives multi-path
splits and mid-flight reroutes, and ``bisection_bandwidth`` matches the
closed-form k-ary fat-tree value.  Plus the integration seams: the new
validate checkers, trace-meta round-trips for every fabric (including a
seed-era meta block), and the ECMP-vs-flowlet regression the topology
experiments must reproduce.
"""

from __future__ import annotations

import dataclasses
import pickle
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.fabrics import FatTreeTopology, LeafSpineTopology
from repro.cluster.routing import (
    DEFAULT_FLOWLET_GAP,
    ROUTING_IMPLS,
    EcmpRouter,
    FlowletRouter,
    Router,
    bisection_bandwidth,
    flow_hash,
    fold_flow_key,
    make_router,
    tor_routing_matrix,
)
from repro.cluster.topology import (
    TOPOLOGY_KINDS,
    ClusterSpec,
    ClusterTopology,
    NodeKind,
    spec_from_mapping,
)
from repro.config import SimulationConfig
from repro.util.units import GBPS

from strategies import fabric_topologies, routing_impls

# ---------------------------------------------------------- construction


class TestFamilyConstruction:
    def test_kind_dispatch(self):
        assert type(ClusterTopology(ClusterSpec(racks=2))) is ClusterTopology
        assert isinstance(
            ClusterTopology(ClusterSpec.fat_tree(k=4)), FatTreeTopology
        )
        assert isinstance(
            ClusterTopology(ClusterSpec.leaf_spine(racks=4)), LeafSpineTopology
        )

    def test_kinds_registry(self):
        assert set(TOPOLOGY_KINDS) == {"tree", "fat_tree", "leaf_spine"}

    def test_fat_tree_shape(self):
        k = 4
        topo = ClusterTopology(ClusterSpec.fat_tree(k=k, servers_per_rack=2))
        assert topo.num_racks == k * (k // 2)
        assert topo.num_vlans == k  # one VLAN per pod
        cores = list(topo.core_ids())
        assert len(cores) == (k // 2) ** 2
        for core in cores:
            assert topo.node_kind(core) == NodeKind.CORE

    def test_fat_tree_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(racks=4, topology_kind="fat_tree", fat_tree_k=3)
        with pytest.raises(ValueError):
            ClusterSpec(racks=5, racks_per_vlan=2, topology_kind="fat_tree",
                        fat_tree_k=4)

    def test_leaf_spine_shape(self):
        topo = ClusterTopology(
            ClusterSpec.leaf_spine(racks=3, spines=2, servers_per_rack=2)
        )
        spines = list(topo.spine_ids())
        assert len(spines) == 2
        for spine in spines:
            assert topo.node_kind(spine) == NodeKind.CORE
            for rack in range(topo.num_racks):
                topo.link_between(topo.tor_of_rack(rack), spine)

    def test_leaf_spine_has_no_agg_tier(self):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=2))
        with pytest.raises(ValueError):
            topo.agg_of_vlan(0)

    def test_fabrics_pickle(self):
        for spec in (
            ClusterSpec.fat_tree(k=4),
            ClusterSpec.leaf_spine(racks=3, spines=2),
        ):
            topo = ClusterTopology(spec)
            clone = pickle.loads(pickle.dumps(topo))
            assert type(clone) is type(topo)
            assert clone.spec == topo.spec
            assert clone.num_links == topo.num_links


# ------------------------------------------------------- path properties


def _endpoint_sample(topology) -> list[int]:
    sample = [
        topology.servers_in_rack(rack)[0]
        for rack in range(min(topology.num_racks, 4))
    ]
    sample.extend(list(topology.external_hosts())[:1])
    return sample


class TestEqualCostPaths:
    @settings(deadline=None)
    @given(topology=fabric_topologies())
    def test_paths_loop_free_and_connect_endpoints(self, topology):
        for src in _endpoint_sample(topology):
            for dst in _endpoint_sample(topology):
                if src == dst:
                    continue
                paths = topology.equal_cost_node_paths(src, dst)
                assert paths
                assert len(set(paths)) == len(paths)
                assert len({len(p) for p in paths}) == 1
                for path in paths:
                    assert path[0] == src and path[-1] == dst
                    assert len(set(path)) == len(path), "loop in path"
                    for a, b in zip(path, path[1:]):
                        topology.link_between(a, b)  # KeyError = not a link

    @settings(deadline=None)
    @given(topology=fabric_topologies(), impl=routing_impls())
    def test_chosen_path_within_equal_cost_set(self, topology, impl):
        router = make_router(topology, impl, seed=3)
        for src in _endpoint_sample(topology):
            for dst in _endpoint_sample(topology):
                if src == dst:
                    continue
                choices = router.equal_cost_paths(src, dst)
                for label in (0, 7, "conn"):
                    path = router.path_for_flow(src, dst, key=label, now=0.0)
                    assert path in choices

    def test_cross_pod_path_count_is_half_k_squared(self):
        k = 4
        topo = ClusterTopology(ClusterSpec.fat_tree(k=k, servers_per_rack=2))
        src = topo.servers_in_rack(0)[0]
        dst = topo.servers_in_rack(topo.num_racks - 1)[0]
        assert len(topo.equal_cost_node_paths(src, dst)) == (k // 2) ** 2

    def test_same_pod_path_count_is_half_k(self):
        k = 4
        topo = ClusterTopology(ClusterSpec.fat_tree(k=k, servers_per_rack=2))
        src = topo.servers_in_rack(0)[0]
        dst = topo.servers_in_rack(1)[0]  # same pod, different edge
        assert len(topo.equal_cost_node_paths(src, dst)) == k // 2

    def test_leaf_spine_path_count_is_spine_count(self):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=4, spines=3))
        src = topo.servers_in_rack(0)[0]
        dst = topo.servers_in_rack(1)[0]
        assert len(topo.equal_cost_node_paths(src, dst)) == 3

    def test_tree_sets_are_singletons(self):
        topo = ClusterTopology(ClusterSpec(racks=4, racks_per_vlan=2))
        router = Router(topo)
        for src in _endpoint_sample(topo):
            for dst in _endpoint_sample(topo):
                if src != dst:
                    assert len(router.equal_cost_paths(src, dst)) == 1


# ------------------------------------------------------ hash determinism


class TestEcmpDeterminism:
    def test_hash_deterministic_across_processes(self):
        """The ECMP hash must not depend on PYTHONHASHSEED."""
        snippet = (
            "from repro.cluster.routing import flow_hash, fold_flow_key;"
            "print(flow_hash(7, 3, 41, fold_flow_key(('conn', 12)), 2))"
        )
        outs = set()
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": hash_seed},
            )
            outs.add(proc.stdout.strip())
        expected = str(flow_hash(7, 3, 41, fold_flow_key(("conn", 12)), 2))
        assert outs == {expected}

    def test_fold_flow_key_kinds(self):
        assert fold_flow_key(None) == 0
        assert fold_flow_key(5) == 5
        assert fold_flow_key("a") == fold_flow_key("a")
        assert fold_flow_key(("a", 1)) == fold_flow_key(["a", 1])
        assert fold_flow_key(("a", 1)) != fold_flow_key((1, "a"))

    def test_same_key_same_path(self):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=4, spines=4))
        router = EcmpRouter(topo, seed=5)
        src, dst = 0, topo.spec.servers_per_rack
        first = router.path_for_flow(src, dst, key=("job", 1))
        for _ in range(5):
            assert router.path_for_flow(src, dst, key=("job", 1)) == first

    def test_seed_changes_selection(self):
        """Across many pairs, two seeds must not pick all-equal paths."""
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=4, spines=4))
        a, b = EcmpRouter(topo, seed=0), EcmpRouter(topo, seed=1)
        pairs = [
            (s, d)
            for s in range(topo.num_servers)
            for d in range(topo.num_servers)
            if s // 4 != d // 4
        ]
        differing = sum(
            a.path_for_flow(s, d, key=0) != b.path_for_flow(s, d, key=0)
            for s, d in pairs
        )
        assert differing > 0

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=2**32))
    def test_flow_hash_spreads(self, a, b):
        if a != b:
            assert flow_hash(0, 1, 2, a) != flow_hash(0, 1, 2, b) or True
        assert 0 <= flow_hash(0, 1, 2, a) < 2**64


# ------------------------------------------------------ flowlet semantics


class TestFlowletSwitching:
    def _router(self, gap=DEFAULT_FLOWLET_GAP):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=4, spines=4))
        return FlowletRouter(topo, seed=2, idle_gap=gap), topo

    def test_no_rehash_within_gap(self):
        router, topo = self._router(gap=0.05)
        src, dst = 0, topo.spec.servers_per_rack
        first = router.path_for_flow(src, dst, key=1, now=0.0)
        for now in (0.01, 0.04, 0.05):
            assert router.path_for_flow(src, dst, key=1, now=now) == first
            assert router.flowlet_id(src, dst, key=1) == 0

    def test_rehash_after_gap(self):
        router, topo = self._router(gap=0.05)
        src, dst = 0, topo.spec.servers_per_rack
        router.path_for_flow(src, dst, key=1, now=0.0)
        router.path_for_flow(src, dst, key=1, now=0.2)
        assert router.flowlet_id(src, dst, key=1) == 1

    def test_note_activity_extends_flowlet(self):
        router, topo = self._router(gap=0.05)
        src, dst = 0, topo.spec.servers_per_rack
        router.path_for_flow(src, dst, key=1, now=0.0)
        router.note_activity(src, dst, 1, 0.18)
        router.path_for_flow(src, dst, key=1, now=0.2)
        assert router.flowlet_id(src, dst, key=1) == 0

    def test_rehash_eventually_changes_path(self):
        """With 4 spines, 16 successive flowlets must not all collide."""
        router, topo = self._router(gap=0.05)
        src, dst = 0, topo.spec.servers_per_rack
        seen = set()
        now = 0.0
        for _ in range(16):
            seen.add(router.path_for_flow(src, dst, key=9, now=now))
            now += 1.0
        assert len(seen) > 1

    def test_connections_independent(self):
        router, topo = self._router(gap=0.05)
        src, dst = 0, topo.spec.servers_per_rack
        router.path_for_flow(src, dst, key=1, now=0.0)
        router.path_for_flow(src, dst, key=2, now=10.0)
        assert router.flowlet_id(src, dst, key=1) == 0
        assert router.flowlet_id(src, dst, key=2) == 0

    def test_invalid_gap_rejected(self):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=2))
        with pytest.raises(ValueError):
            FlowletRouter(topo, idle_gap=0.0)


# ------------------------------------------- byte conservation / reroute


class TestMultiPathByteConservation:
    def _sim_config(self, routing_impl: str) -> SimulationConfig:
        from repro.workload.generator import WorkloadConfig

        return SimulationConfig(
            cluster=ClusterSpec.leaf_spine(
                racks=3, spines=2, servers_per_rack=2
            ),
            workload=WorkloadConfig(job_arrival_rate=0.3),
            duration=20.0,
            seed=11,
            routing_impl=routing_impl,
        )

    @pytest.mark.parametrize("routing_impl", ROUTING_IMPLS)
    def test_simulated_multipath_conserves_bytes(
        self, routing_impl, assert_invariants
    ):
        from repro.simulation.simulator import simulate

        result = simulate(self._sim_config(routing_impl))
        assert len(result.socket_log), "campaign produced no events"
        assert_invariants(result)

    def test_reroute_conserves_per_link_bytes(self):
        """A mid-flight reroute integrates bytes on each path exactly
        for the time spent there."""
        from repro.simulation.linkloads import LinkLoadTracker
        from repro.simulation.transport import FluidTransport, TransferMeta

        topo = ClusterTopology(
            ClusterSpec.leaf_spine(racks=2, spines=2, servers_per_rack=2)
        )
        tracker = LinkLoadTracker(topo, bin_width=0.5, horizon=10.0)
        transport = FluidTransport(topo, sinks=[tracker])
        router = Router(topo)
        src, dst = 0, topo.spec.servers_per_rack
        path_a, path_b = router.equal_cost_paths(src, dst)

        size = 2.0 * GBPS  # 2 seconds at the 1 Gbps NIC bottleneck
        slot = transport.add_flow(
            src, dst, size, path_a, TransferMeta(kind="t")
        )
        transport.recompute_rates()
        transport.advance_to(1.0)
        transport.reroute_flow(slot, path_b)
        transport.recompute_rates()
        # Step to the drain instant, the way the engine does.
        done = transport.next_completion_time()
        assert done == pytest.approx(2.0)
        transport.advance_to(done)
        assert transport.pop_completed(), "flow should have drained"

        rate = topo.spec.server_nic_capacity
        matrix = tracker.byte_matrix()
        only_a = set(path_a) - set(path_b)
        only_b = set(path_b) - set(path_a)
        shared = set(path_a) & set(path_b)
        assert only_a and only_b
        for link in only_a:
            np.testing.assert_allclose(matrix[link].sum(), rate * 1.0)
        for link in only_b:
            np.testing.assert_allclose(matrix[link].sum(), rate * 1.0)
        for link in shared:
            np.testing.assert_allclose(matrix[link].sum(), size)

    def test_reroute_rejects_bad_slots_and_paths(self):
        from repro.simulation.transport import FluidTransport, TransferMeta

        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=2, spines=2))
        transport = FluidTransport(topo)
        router = Router(topo)
        src, dst = 0, topo.spec.servers_per_rack
        paths = router.equal_cost_paths(src, dst)
        slot = transport.add_flow(src, dst, 10.0, paths[0],
                                  TransferMeta(kind="t"))
        with pytest.raises(ValueError):
            transport.reroute_flow(slot, ())
        with pytest.raises(ValueError):
            transport.reroute_flow(slot + 1, paths[1])
        with pytest.raises(ValueError):
            transport.reroute_flow(slot, tuple(range(20)))


# ----------------------------------------------------- bisection closed forms


class TestBisectionBandwidth:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_fat_tree_closed_form(self, k):
        spec = ClusterSpec.fat_tree(k=k, servers_per_rack=2)
        topo = ClusterTopology(spec)
        expected = (k**3 / 8) * spec.agg_uplink_capacity
        assert bisection_bandwidth(topo) == pytest.approx(expected)

    @pytest.mark.parametrize("racks,spines", [(2, 1), (4, 2), (6, 3)])
    def test_leaf_spine_closed_form(self, racks, spines):
        spec = ClusterSpec.leaf_spine(racks=racks, spines=spines)
        topo = ClusterTopology(spec)
        expected = (racks // 2) * spines * spec.tor_uplink_capacity
        assert bisection_bandwidth(topo) == pytest.approx(expected)

    def test_fat_tree_rebalances_vs_tree(self):
        """A fat-tree's bisection scales with k^3; the matched-size tree
        is pinned to its two core uplinks."""
        fat = ClusterTopology(ClusterSpec.fat_tree(k=4, servers_per_rack=2))
        tree = ClusterTopology(
            ClusterSpec(racks=8, servers_per_rack=2, racks_per_vlan=4)
        )
        assert bisection_bandwidth(fat) > bisection_bandwidth(tree)


# --------------------------------------------------- validate integration


class TestValidateIntegration:
    def test_checkers_registered(self):
        from repro.validate import checker_names

        names = checker_names()
        assert "topology.degree_conservation" in names
        assert "routing.path_consistency" in names

    @settings(deadline=None, max_examples=10)
    @given(topology=fabric_topologies())
    def test_checkers_clean_on_family(self, topology):
        from repro.validate import run_checkers
        from repro.validate.context import ValidationContext

        report = run_checkers(
            ValidationContext(topology=topology),
            names=[
                "topology.degree_conservation",
                "routing.path_consistency",
            ],
        )
        assert report.ok, report.render()

    def test_degree_conservation_catches_capacity_mismatch(self):
        from repro.validate import run_checkers
        from repro.validate.context import ValidationContext

        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=2, spines=2))
        topo.capacities = topo.capacities.copy()
        topo.capacities[0] *= 2.0
        report = run_checkers(
            ValidationContext(topology=topo),
            names=["topology.degree_conservation"],
        )
        assert not report.ok

    def test_multipath_routing_matrix_entries_fractional(self):
        topo = ClusterTopology(ClusterSpec.leaf_spine(racks=3, spines=2))
        matrix, pairs, observed = tor_routing_matrix(topo, multipath=True)
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0
        assert 0.0 < matrix[(matrix > 0) & (matrix < 1)].size


# ------------------------------------------------------ trace-meta compat


class TestTraceMeta:
    @pytest.mark.parametrize("spec", [
        ClusterSpec(racks=3, racks_per_vlan=3),
        ClusterSpec.fat_tree(k=2, servers_per_rack=2),
        ClusterSpec.leaf_spine(racks=3, spines=2),
    ], ids=["tree", "fat_tree", "leaf_spine"])
    def test_meta_round_trip(self, spec):
        import json

        from repro.trace.record import TRACE_META_VERSION, trace_meta

        config = SimulationConfig(cluster=spec, duration=5.0,
                                  routing_impl="ecmp")
        meta = json.loads(json.dumps(trace_meta(config)))
        assert meta["meta_version"] == TRACE_META_VERSION
        assert meta["topology_kind"] == spec.topology_kind
        assert meta["routing_impl"] == "ecmp"
        rebuilt = ClusterTopology(spec_from_mapping(meta["cluster_spec"]))
        assert rebuilt.kind == spec.topology_kind
        assert rebuilt.spec == spec

    def test_seed_era_meta_rebuilds_tree(self):
        """A meta_version-1 cluster_spec (no topology keys) must still
        rebuild the original tree."""
        seed_era = {
            "racks": 6, "servers_per_rack": 8, "racks_per_vlan": 3,
            "external_hosts": 2,
            "server_nic_capacity": 1 * GBPS,
            "tor_uplink_capacity": 2.5 * GBPS,
            "agg_uplink_capacity": 40 * GBPS,
            "external_link_capacity": 10 * GBPS,
        }
        spec = spec_from_mapping(seed_era)
        assert spec.topology_kind == "tree"
        topo = ClusterTopology(spec)
        assert type(topo) is ClusterTopology
        assert topo.num_servers == 48

    def test_unknown_future_keys_dropped(self):
        spec = spec_from_mapping({
            "racks": 2, "topology_kind": "tree",
            "some_future_field": 123,
        })
        assert spec.racks == 2


# ----------------------------------------------------- experiment seams


class TestTopologyExperiments:
    def test_experiments_registered(self):
        from repro.experiments.registry import experiment_names

        names = experiment_names()
        assert "topo_ecmp_vs_flowlet" in names
        assert "topo_fabric_sweep" in names

    def test_flowlet_beats_pinned_ecmp(self):
        """The acceptance regression: under the deterministic
        hash-collision hotspot, flowlet switching must deliver strictly
        better goodput and a strictly lower p99 FCT than ECMP."""
        from repro.experiments.registry import get_experiment

        study = get_experiment("topo_ecmp_vs_flowlet").run(seed=0)
        assert study.flowlet.goodput > study.ecmp.goodput * 1.1
        assert study.flowlet.p99_fct < study.ecmp.p99_fct * 0.95
        assert study.ecmp.completed == study.flowlet.completed

    def test_fabric_sweep_profiles_and_summary(self):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("topo_fabric_sweep")
        sweep = spec.runner(seed=0, duration=3.0)
        kinds = {p.topology_kind for p in sweep.profiles}
        assert kinds == {"tree", "fat_tree", "leaf_spine"}
        assert sweep.fat_tree_bisection_gain > 1.0
        summary = spec.summary(sweep)
        assert summary["fat_tree_bisection_gain"] == pytest.approx(
            sweep.fat_tree_bisection_gain
        )
        assert all(np.isfinite(v) for v in summary.values())
        assert sweep.rows()


# ------------------------------------------------------- empirical mixes


class TestEmpiricalWorkload:
    def test_mean_matches_monte_carlo(self):
        from repro.synthetic import flow_size_mix

        mix = flow_size_mix("websearch")
        rng = np.random.default_rng(0)
        mc = mix.sample_sizes(100_000, rng).mean()
        assert mc == pytest.approx(mix.mean_size(), rel=0.05)

    def test_generation_deterministic_and_load_targeted(self):
        from repro.synthetic import EmpiricalWorkload, flow_size_mix

        topo = ClusterTopology(
            ClusterSpec.leaf_spine(racks=4, spines=2, servers_per_rack=4)
        )
        workload = EmpiricalWorkload(
            mix=flow_size_mix("websearch"),
            target_load=0.3, intra_rack_fraction=0.4,
        )
        flows = workload.generate(topo, duration=10.0, seed=3)
        again = workload.generate(topo, duration=10.0, seed=3)
        assert np.array_equal(flows.start, again.start)
        assert np.array_equal(flows.dst, again.dst)
        assert np.all(flows.src != flows.dst)
        assert np.all((flows.dst >= 0) & (flows.dst < topo.num_servers))
        achieved = flows.total_bytes / (
            10.0 * topo.num_servers * topo.spec.server_nic_capacity
        )
        assert achieved == pytest.approx(0.3, rel=0.35)

    def test_unknown_mix_rejected(self):
        from repro.synthetic import flow_size_mix

        with pytest.raises(ValueError):
            flow_size_mix("nope")


# ------------------------------------------------------------ CLI seams


class TestCliFabricFlags:
    def test_fabric_spec_from_args(self):
        from repro.cli import _build_parser, _cluster_spec_from_args

        parser = _build_parser()
        args = parser.parse_args([
            "simulate", "--topology", "fat_tree", "--fat-tree-k", "4",
        ])
        spec = _cluster_spec_from_args(args)
        assert spec.topology_kind == "fat_tree" and spec.racks == 8

        args = parser.parse_args([
            "trace", "record", "--topology", "leaf_spine",
            "--racks", "6", "--spines", "3", "--routing", "flowlet",
        ])
        spec = _cluster_spec_from_args(args)
        assert spec.topology_kind == "leaf_spine"
        assert spec.spine_count == 3
        assert args.routing == "flowlet"

    def test_invalid_choices_rejected(self):
        from repro.cli import _build_parser

        parser = _build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "--topology", "torus"])
        with pytest.raises(SystemExit):
            parser.parse_args(["simulate", "--routing", "random"])


# ---------------------------------------------------------- config seams


class TestRoutingConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.routing_impl == "single"
        assert config.flowlet_idle_gap == DEFAULT_FLOWLET_GAP

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(routing_impl="magic")
        with pytest.raises(ValueError):
            SimulationConfig(flowlet_idle_gap=0.0)

    @pytest.mark.parametrize("impl", ROUTING_IMPLS)
    def test_simulator_builds_requested_router(self, impl):
        from repro.simulation.simulator import Simulator

        config = SimulationConfig(
            cluster=ClusterSpec.leaf_spine(racks=2, spines=2),
            routing_impl=impl, duration=5.0,
        )
        assert Simulator(config).router.impl == impl

    def test_config_replace_keeps_routing(self):
        config = SimulationConfig(routing_impl="ecmp")
        clone = dataclasses.replace(config, seed=99)
        assert clone.routing_impl == "ecmp"
