"""Instrumentation overhead accounting (§2)."""

import pytest

from repro.instrumentation.overhead import OverheadModel, estimate_overhead


def report(events=1_000_000, traffic=1e12, raw=1e8, compressed=1e7,
           duration=1000.0, servers=100, model=None):
    return estimate_overhead(
        events=events, traffic_bytes=traffic, raw_log_bytes=raw,
        compressed_log_bytes=compressed, duration=duration, num_servers=servers,
        model=model,
    )


class TestAccounting:
    def test_cpu_increase_scales_with_events(self):
        low = report(events=10_000)
        high = report(events=1_000_000)
        assert high.cpu_utilization_increase_pct > low.cpu_utilization_increase_pct

    def test_cpu_increase_formula(self):
        model = OverheadModel(cycles_per_event=1000.0, cpu_hz=1e9, cores=1)
        result = report(events=1_000_000, duration=1000.0, servers=1, model=model)
        # 1000 events/s * 1000 cycles = 1e6 cycles/s of a 1e9 budget = 0.1%
        assert result.cpu_utilization_increase_pct == pytest.approx(0.1)

    def test_cycles_per_byte(self):
        model = OverheadModel(cycles_per_event=4000.0)
        result = report(events=1000, traffic=4_000_000.0, model=model)
        assert result.cycles_per_traffic_byte == pytest.approx(1.0)

    def test_compression_ratio(self):
        assert report(raw=2e8, compressed=1e7).compression_ratio == pytest.approx(20.0)

    def test_log_volume_extrapolation(self):
        result = report(raw=1e9, duration=1000.0, servers=10)
        per_server_per_sec = 1e9 / 1000.0 / 10
        assert result.log_bytes_per_server_per_day == pytest.approx(
            per_server_per_sec * 86400
        )

    def test_upload_rates(self):
        result = report(raw=1e9, compressed=1e8, duration=1000.0, servers=10)
        assert result.upload_rate_raw_mbps == pytest.approx(0.8)
        assert result.upload_rate_compressed_mbps == pytest.approx(0.08)
        assert result.throughput_drop_mbps == result.upload_rate_compressed_mbps

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            report(duration=0.0)
        with pytest.raises(ValueError):
            report(servers=0)

    def test_rows_render(self):
        rows = report().rows()
        assert len(rows) == 9
        assert all(isinstance(metric, str) and isinstance(value, str)
                   for metric, value in rows)
