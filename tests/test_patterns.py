"""Macroscopic pattern statistics (Figs 2-4)."""

import numpy as np
import pytest

from repro.core.patterns import (
    correspondent_stats,
    pair_byte_stats,
    pattern_summary,
    scatter_gather_servers,
)


@pytest.fixture()
def endpoint_ids(tiny_topology):
    return np.asarray(tiny_topology.endpoints())


def empty_tm(tiny_topology, endpoint_ids):
    n = endpoint_ids.size
    return np.zeros((n, n))


class TestPairByteStats:
    def test_all_zero(self, tiny_topology, endpoint_ids):
        stats = pair_byte_stats(empty_tm(tiny_topology, endpoint_ids),
                                tiny_topology, endpoint_ids)
        assert stats.prob_zero_in_rack == 1.0
        assert stats.prob_zero_cross_rack == 1.0
        assert stats.in_rack_log_bytes.size == 0

    def test_in_rack_pair_classified(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = np.e**10  # same rack
        stats = pair_byte_stats(tm, tiny_topology, endpoint_ids)
        assert stats.in_rack_log_bytes.tolist() == pytest.approx([10.0])
        assert stats.cross_rack_log_bytes.size == 0

    def test_cross_rack_pair_classified(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        other = tiny_topology.spec.servers_per_rack
        tm[0, other] = np.e**12
        stats = pair_byte_stats(tm, tiny_topology, endpoint_ids)
        assert stats.cross_rack_log_bytes.tolist() == pytest.approx([12.0])

    def test_zero_probabilities(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = 100.0
        stats = pair_byte_stats(tm, tiny_topology, endpoint_ids)
        spec = tiny_topology.spec
        in_rack_pairs = tiny_topology.num_racks * spec.servers_per_rack * (
            spec.servers_per_rack - 1
        )
        assert stats.prob_zero_in_rack == pytest.approx(1 - 1 / in_rack_pairs)
        assert stats.prob_talk_in_rack == pytest.approx(1 / in_rack_pairs)

    def test_external_pairs_ignored(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[-1, 0] = 1e9  # external -> server
        stats = pair_byte_stats(tm, tiny_topology, endpoint_ids)
        assert stats.in_rack_log_bytes.size == 0
        assert stats.cross_rack_log_bytes.size == 0


class TestCorrespondents:
    def test_counts_either_direction(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = 1.0   # 0 -> 1
        tm[2, 0] = 1.0   # 2 -> 0 (incoming still counts)
        stats = correspondent_stats(tm, tiny_topology, endpoint_ids)
        assert stats.in_rack_counts[0] == 2
        assert stats.in_rack_counts[1] == 1
        assert stats.in_rack_counts[2] == 1

    def test_fraction_normalisation(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        rack_peers = tiny_topology.spec.servers_per_rack - 1
        for peer in range(1, rack_peers + 1):
            tm[0, peer] = 1.0
        stats = correspondent_stats(tm, tiny_topology, endpoint_ids)
        assert stats.in_rack_fraction[0] == pytest.approx(1.0)

    def test_medians(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        other = tiny_topology.spec.servers_per_rack
        tm[0, other] = 1.0
        stats = correspondent_stats(tm, tiny_topology, endpoint_ids)
        assert stats.median_cross_rack == 0.0  # most servers silent
        assert stats.cross_rack_counts.max() == 1


class TestPatternSummary:
    def test_byte_shares_sum_to_one(self, tiny_topology, endpoint_ids, rng):
        n = endpoint_ids.size
        tm = rng.random((n, n))
        np.fill_diagonal(tm, 0.0)
        summary = pattern_summary(tm, tiny_topology, endpoint_ids)
        assert (
            summary.in_rack_byte_fraction
            + summary.cross_rack_byte_fraction
            + summary.external_byte_fraction
        ) == pytest.approx(1.0)

    def test_locality_ratio(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = 75.0
        other = tiny_topology.spec.servers_per_rack
        tm[0, other] = 25.0
        summary = pattern_summary(tm, tiny_topology, endpoint_ids)
        assert summary.locality_ratio == pytest.approx(3.0)

    def test_active_pairs(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = 1.0
        tm[3, 4] = 1.0
        summary = pattern_summary(tm, tiny_topology, endpoint_ids)
        assert summary.num_active_pairs == 2


class TestScatterGather:
    def test_hub_detected(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        hub = 0
        outside = [
            s for s in range(tiny_topology.num_servers)
            if tiny_topology.rack_of(s) != tiny_topology.rack_of(hub)
        ]
        for peer in outside[: len(outside) // 2 + 1]:
            tm[hub, peer] = 1.0
        hubs = scatter_gather_servers(tm, tiny_topology, endpoint_ids,
                                      min_fanout_fraction=0.25)
        assert hub in hubs.tolist()

    def test_quiet_matrix_no_hubs(self, tiny_topology, endpoint_ids):
        tm = empty_tm(tiny_topology, endpoint_ids)
        tm[0, 1] = 1.0
        hubs = scatter_gather_servers(tm, tiny_topology, endpoint_ids)
        assert hubs.size == 0
