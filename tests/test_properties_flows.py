"""Property tests for flow reconstruction and streaming equivalence.

Hypothesis generates structurally valid event logs (``strategies.py``);
the properties assert the algebraic contracts the streaming layer is
built on: splitting a log anywhere and merging the partial states equals
the one-shot analysis, and the inactivity timeout splits flows exactly
at gaps strictly longer than the timeout.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.core.flows import reconstruct_flows
from repro.core.streaming import StreamingFlows, StreamingTrafficMatrix
from repro.core.traffic_matrix import tm_series_from_events
from repro.instrumentation.events import DIRECTION_SEND, SocketEventLog
from repro.trace.analyze import _flow_tables_equal

from strategies import event_logs

_TOPOLOGY = ClusterTopology(
    ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=2,
                external_hosts=1)
)


def _split_rows(log: SocketEventLog, at: int) -> tuple[SocketEventLog, SocketEventLog]:
    """Two time-contiguous halves of a finalized log."""
    columns = log.to_columns()
    head = {name: column[:at] for name, column in columns.items()}
    tail = {name: column[at:] for name, column in columns.items()}
    return SocketEventLog.from_columns(head), SocketEventLog.from_columns(tail)


@given(
    log=event_logs(topology=_TOPOLOGY),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_split_merge_flows_equals_one_shot(log, fraction):
    at = int(round(fraction * len(log)))
    head, tail = _split_rows(log, at)
    left = StreamingFlows().update(head)
    right = StreamingFlows().update(tail)
    merged = left.merge(right).finalize()
    assert _flow_tables_equal(merged, reconstruct_flows(log))


@given(
    log=event_logs(topology=_TOPOLOGY),
    fraction=st.floats(min_value=0.0, max_value=1.0),
)
def test_split_merge_tm_equals_one_shot(log, fraction):
    duration = 100.0
    at = int(round(fraction * len(log)))
    head, tail = _split_rows(log, at)
    make = lambda: StreamingTrafficMatrix(_TOPOLOGY, 10.0, duration)
    merged = make().update(head).merge(make().update(tail)).finalize()
    one_shot = tm_series_from_events(log, _TOPOLOGY, 10.0, duration)
    assert np.array_equal(merged.matrices, one_shot.matrices)
    assert np.array_equal(merged.endpoint_ids, one_shot.endpoint_ids)


@given(
    log=event_logs(topology=_TOPOLOGY, max_transfers=8),
    pieces=st.integers(min_value=2, max_value=5),
)
def test_many_way_split_is_associative(log, pieces):
    columns = log.to_columns()
    n = len(log)
    bounds = [round(k * n / pieces) for k in range(pieces + 1)]
    acc = StreamingFlows()
    for k in range(pieces):
        chunk = SocketEventLog.from_columns(
            {name: column[bounds[k]:bounds[k + 1]]
             for name, column in columns.items()}
        )
        acc.update(chunk)
    assert _flow_tables_equal(acc.finalize(), reconstruct_flows(log))


def _two_burst_log(gap: float, t0: float = 5.0) -> SocketEventLog:
    """Two send events on one five-tuple separated by ``gap`` seconds."""
    log = SocketEventLog()
    for timestamp in (t0, t0 + gap):
        log.append(
            timestamp=timestamp, server=0, direction=DIRECTION_SEND,
            src=0, src_port=4000, dst=1, dst_port=80, protocol=0,
            num_bytes=1000.0, job_id=0, phase_index=0,
        )
    log.finalize()
    return log


@given(
    gap=st.floats(min_value=0.01, max_value=500.0),
    timeout=st.floats(min_value=0.5, max_value=120.0),
)
def test_inactivity_timeout_boundary(gap, timeout):
    flows = reconstruct_flows(_two_burst_log(gap), inactivity_timeout=timeout)
    # The reconstruction compares the *stored* timestamps, whose
    # difference can differ from `gap` by one ulp — judge as it does.
    effective_gap = (5.0 + gap) - 5.0
    if effective_gap > timeout:
        assert len(flows) == 2
        assert np.all(flows.num_bytes == 1000.0)
    else:
        assert len(flows) == 1
        assert flows.num_bytes[0] == 2000.0
        assert flows.num_events[0] == 2


@given(gap=st.floats(min_value=0.01, max_value=500.0))
def test_timeout_boundary_matches_streaming_split_at_gap(gap):
    """Splitting exactly inside the gap must not change the verdict."""
    timeout = 60.0
    log = _two_burst_log(gap)
    head, tail = _split_rows(log, 1)
    merged = (
        StreamingFlows(inactivity_timeout=timeout)
        .update(head)
        .merge(StreamingFlows(inactivity_timeout=timeout).update(tail))
        .finalize()
    )
    one_shot = reconstruct_flows(log, inactivity_timeout=timeout)
    assert _flow_tables_equal(merged, one_shot)
    effective_gap = (5.0 + gap) - 5.0
    assert len(merged) == (2 if effective_gap > timeout else 1)
