"""Deterministic random stream management."""

import pytest

from repro.util.randomness import RandomSource, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_differs_by_root(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_positive_63_bit(self):
        for seed in range(20):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2**63

    def test_path_not_ambiguous(self):
        # ("ab", "c") must not collide with ("a", "bc") systematically;
        # with hashing these are simply different paths.
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")


class TestRandomSource:
    def test_stream_cached(self):
        source = RandomSource(7)
        assert source.stream("x") is source.stream("x")

    def test_streams_independent(self):
        source = RandomSource(7)
        a = source.stream("a").random(5)
        b = source.stream("b").random(5)
        assert not (a == b).all()

    def test_reproducible_across_instances(self):
        first = RandomSource(7).stream("workload").random(4)
        second = RandomSource(7).stream("workload").random(4)
        assert (first == second).all()

    def test_child_namespacing(self):
        source = RandomSource(7)
        child = source.child("sub")
        direct = RandomSource(derive_seed(7, "sub"))
        assert (child.stream("x").random(3) == direct.stream("x").random(3)).all()

    def test_empty_stream_name_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(1).stream()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RandomSource("seed")  # type: ignore[arg-type]

    def test_draw_order_isolation(self):
        """Drawing from one stream must not perturb another."""
        source_a = RandomSource(3)
        source_a.stream("noise").random(100)
        value_a = source_a.stream("signal").random()
        source_b = RandomSource(3)
        value_b = source_b.stream("signal").random()
        assert value_a == value_b
