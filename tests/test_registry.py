"""Experiment registry: discovery, the uniform protocol, summaries."""

import numpy as np
import pytest

import repro.experiments  # noqa: F401  (importing registers everything)
from repro.experiments import fig02, fig09
from repro.experiments.registry import (
    default_summary,
    experiment,
    experiment_names,
    experiment_specs,
    get_experiment,
)

EXPECTED_FIGURES = {
    "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "table_s2",
    "ext_roleprior", "ext_sampling",
}
EXPECTED_ABLATIONS = {
    "locality", "conncap", "gravity",
    "cc_fct", "cc_ecn_sweep", "cc_incast",
    "topo_ecmp_vs_flowlet", "topo_fabric_sweep",
}


class TestDiscovery:
    def test_every_figure_module_registered(self):
        assert set(experiment_names(kind="figure")) == EXPECTED_FIGURES

    def test_every_ablation_registered(self):
        assert set(experiment_names(kind="ablation")) == EXPECTED_ABLATIONS

    def test_all_names_is_union(self):
        assert set(experiment_names()) == EXPECTED_FIGURES | EXPECTED_ABLATIONS

    def test_figures_listed_in_paper_order_extensions_last(self):
        names = experiment_names(kind="figure")
        assert names[0] == "fig02"
        assert names[-2:] == ["ext_roleprior", "ext_sampling"]

    def test_specs_carry_metadata(self):
        for spec in experiment_specs():
            assert spec.name
            assert spec.kind in ("figure", "ablation")
            assert spec.title
            assert callable(spec.runner)

    def test_unknown_name_raises_with_catalog(self):
        with pytest.raises(KeyError, match="fig02"):
            get_experiment("fig99")


class TestDecorator:
    def test_returns_runner_unchanged(self):
        assert get_experiment("fig02").runner is fig02.run
        assert get_experiment("fig09").runner is fig09.run

    def test_rejects_conflicting_reregistration(self):
        with pytest.raises(ValueError, match="already registered"):
            @experiment("fig02", title="impostor")
            def run():  # pragma: no cover - registration must fail first
                pass

    def test_reregistration_of_same_runner_is_idempotent(self):
        spec = get_experiment("fig02")
        experiment("fig02", figure=spec.figure, title=spec.title)(fig02.run)
        assert get_experiment("fig02").runner is fig02.run

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            experiment("whatever", kind="mystery")


class TestProtocol:
    def test_spec_run_matches_module_run(self, dataset):
        via_registry = get_experiment("fig09").run(dataset)
        direct = fig09.run(dataset)
        assert type(via_registry) is type(direct)
        assert via_registry.stats.total_flows == direct.stats.total_flows

    def test_summary_is_flat_finite_floats(self, dataset):
        for name in ("fig02", "fig09", "table_s2", "ext_sampling"):
            spec = get_experiment(name)
            summary = spec.summary(spec.run(dataset))
            assert summary, name
            for key, value in summary.items():
                assert isinstance(key, str)
                assert isinstance(value, float)
                assert np.isfinite(value), (name, key)

    def test_rows_render_for_every_figure(self, dataset):
        # The registry's contract: every figure result exposes rows().
        for name in ("fig02", "fig04", "fig09", "fig11"):
            result = get_experiment(name).run(dataset)
            rows = result.rows()
            assert rows and all(len(row.as_tuple()) == 3 for row in rows)


class TestDefaultSummary:
    def test_harvests_fields_properties_and_nested_stats(self, dataset):
        result = fig09.run(dataset)
        summary = default_summary(result)
        assert "stats.frac_flows_under_10s" in summary
        assert "stats.total_flows" in summary

    def test_skips_non_finite_and_bools(self):
        from dataclasses import dataclass

        @dataclass
        class Mixed:
            good: float = 1.5
            count: int = 3
            flag: bool = True
            bad: float = float("nan")
            text: str = "no"

        summary = default_summary(Mixed())
        assert summary == {"good": 1.5, "count": 3.0}
