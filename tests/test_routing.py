"""Tree routing and the tomography routing matrix."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.routing import Router, bisection_bandwidth, tor_routing_matrix
from repro.cluster.topology import ClusterSpec, ClusterTopology


class TestPaths:
    def test_same_rack_two_hops(self, tiny_topology, tiny_router):
        path = tiny_router.path_links(0, 1)
        assert len(path) == 2  # server->tor, tor->server

    def test_same_vlan_four_hops(self, tiny_topology, tiny_router):
        other = tiny_topology.spec.servers_per_rack  # first server of rack 1
        path = tiny_router.path_links(0, other)
        assert len(path) == 4

    def test_cross_vlan_six_hops(self, tiny_topology, tiny_router):
        spec = tiny_topology.spec
        other_vlan_server = spec.servers_per_rack * spec.racks_per_vlan
        path = tiny_router.path_links(0, other_vlan_server)
        assert len(path) == 6

    def test_external_path(self, tiny_topology, tiny_router):
        external = tiny_topology.num_nodes - 1
        path = tiny_router.path_links(0, external)
        assert len(path) == 4  # server->tor->agg->core->external

    def test_self_path_empty(self, tiny_router):
        assert tiny_router.path_links(3, 3) == ()
        assert tiny_router.path_nodes(3, 3) == (3,)

    def test_paths_cached(self, tiny_router):
        assert tiny_router.path_links(0, 7) is tiny_router.path_links(0, 7)

    def test_path_contiguity(self, tiny_topology, tiny_router):
        """Every consecutive link pair shares the intermediate node."""
        for dst in (1, 7, 15, tiny_topology.num_nodes - 1):
            nodes = tiny_router.path_nodes(0, dst)
            links = tiny_router.path_links(0, dst)
            for (a, b), link_id in zip(zip(nodes[:-1], nodes[1:]), links):
                link = tiny_topology.links[link_id]
                assert (link.src, link.dst) == (a, b)

    def test_hop_count(self, tiny_router):
        assert tiny_router.hop_count(0, 1) == 2

    @given(st.integers(min_value=0, max_value=21), st.integers(min_value=0, max_value=21))
    @settings(max_examples=80, deadline=None)
    def test_forward_reverse_symmetry(self, a, b):
        topo = ClusterTopology(
            ClusterSpec(racks=4, servers_per_rack=5, racks_per_vlan=2, external_hosts=2)
        )
        router = Router(topo)
        endpoints = topo.endpoints()
        src, dst = endpoints[a % len(endpoints)], endpoints[b % len(endpoints)]
        forward = router.path_nodes(src, dst)
        backward = router.path_nodes(dst, src)
        assert forward == tuple(reversed(backward))


class TestRoutingMatrix:
    def test_shape(self, tiny_topology):
        matrix, pairs, observed = tor_routing_matrix(tiny_topology)
        n = tiny_topology.num_racks
        assert len(pairs) == n * (n - 1)
        assert matrix.shape == (len(observed), len(pairs))

    def test_binary_entries(self, tiny_topology):
        matrix, _, _ = tor_routing_matrix(tiny_topology)
        assert set(np.unique(matrix)) <= {0.0, 1.0}

    def test_same_vlan_pair_uses_two_links(self, tiny_topology):
        matrix, pairs, _ = tor_routing_matrix(tiny_topology)
        # racks 0 and 1 share a VLAN in the tiny topology
        column = pairs.index((0, 1))
        assert matrix[:, column].sum() == 2  # tor0->agg, agg->tor1

    def test_cross_vlan_pair_uses_four_links(self, tiny_topology):
        matrix, pairs, _ = tor_routing_matrix(tiny_topology)
        column = pairs.index((0, tiny_topology.num_racks - 1))
        assert matrix[:, column].sum() == 4

    def test_underconstrained(self, tiny_topology):
        """The tomography problem the paper poses: links << pairs."""
        matrix, pairs, observed = tor_routing_matrix(tiny_topology)
        rank = np.linalg.matrix_rank(matrix)
        assert rank < len(pairs)

    def test_uplink_row_sums_all_sources(self, tiny_topology):
        """A ToR's uplink carries every pair originating at that rack."""
        matrix, pairs, observed = tor_routing_matrix(tiny_topology)
        tor0 = tiny_topology.tor_of_rack(0)
        agg0 = tiny_topology.agg_of_vlan(0)
        uplink = tiny_topology.link_between(tor0, agg0).link_id
        row = observed.index(uplink)
        sourced = [k for k, (i, _) in enumerate(pairs) if i == 0]
        assert all(matrix[row, k] == 1.0 for k in sourced)


class TestBisection:
    def test_positive(self, tiny_topology):
        assert bisection_bandwidth(tiny_topology) > 0

    def test_equals_agg_core_capacity(self, tiny_topology):
        expected = tiny_topology.num_vlans * tiny_topology.spec.agg_uplink_capacity
        assert bisection_bandwidth(tiny_topology) == expected
