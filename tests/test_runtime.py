"""Job executor unit tests against a fake simulator service."""

from __future__ import annotations

import heapq
import itertools

import numpy as np
import pytest

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.instrumentation.applog import ApplicationLog
from repro.simulation.transport import Transfer
from repro.util.units import GB, MB
from repro.workload.generator import WorkloadConfig, WorkloadSchedule
from repro.workload.job import JobState, VertexState
from repro.workload.runtime import JobExecutor
from repro.workload.scope import STANDARD_TEMPLATES, JobSpec


class FakeServices:
    """A minimal in-memory simulator: transfers finish after a fixed
    service time, callbacks fire through a heap-driven clock."""

    def __init__(self, topology: ClusterTopology, transfer_time: float = 0.1,
                 congestion: float = 0.0) -> None:
        self.topology = topology
        self.router = Router(topology)
        self.transfer_time = transfer_time
        self.congestion = congestion
        self.time = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self.transfers: list[Transfer] = []

    def now(self) -> float:
        return self.time

    def schedule(self, time, callback):
        heapq.heappush(self._heap, (max(time, self.time), next(self._seq), callback))

    def start_transfer(self, src, dst, size, meta, on_complete):
        start = self.time

        def finish():
            transfer = Transfer(
                transfer_id=len(self.transfers), src=src, dst=dst, size=size,
                start_time=start, end_time=self.time, meta=meta,
            )
            self.transfers.append(transfer)
            on_complete(transfer)

        self.schedule(self.time + self.transfer_time, finish)

    def max_path_utilization(self, src, dst, start, end):
        return self.congestion

    def run(self, until: float = 1e9, max_events: int = 100000) -> None:
        for _ in range(max_events):
            if not self._heap or self._heap[0][0] > until:
                return
            time, _, callback = heapq.heappop(self._heap)
            self.time = max(self.time, time)
            callback()


@pytest.fixture()
def topo():
    return ClusterTopology(
        ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=3, external_hosts=1)
    )


def make_executor(topo, services, seed=0, **config_kwargs):
    defaults = dict(
        job_arrival_rate=0.0,
        initial_data_per_server=0.0,
        non_network_failure_prob=0.0,
        read_failure_base=0.0,
    )
    defaults.update(config_kwargs)
    config = WorkloadConfig(**defaults)
    return JobExecutor(
        topology=topo,
        config=config,
        services=services,
        applog=ApplicationLog(),
        rng=np.random.default_rng(seed),
    )


def submit_job(executor, services, template="interactive", input_bytes=512 * MB,
               submit_time=0.0):
    spec = JobSpec(name="test-job", template=STANDARD_TEMPLATES[template],
                   input_bytes=input_bytes, submit_time=submit_time)
    schedule = WorkloadSchedule(jobs=[spec], ingestions=[], evacuations=[],
                                duration=1e9)
    executor.install_schedule(schedule)
    return spec


class TestJobLifecycle:
    def test_interactive_job_completes(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services)
        services.run()
        job = executor.jobs[0]
        assert job.state == JobState.SUCCEEDED
        assert job.end_time is not None

    def test_phases_run_in_order(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        applog = executor.applog
        starts = {r.phase_index: r.time for r in applog.phase_starts}
        ends = {r.phase_index: r.time for r in applog.phase_ends}
        assert set(starts) == {0, 1, 2}
        assert starts[0] <= starts[1] <= starts[2]
        # Barrier: aggregate starts only after partition fully ends.
        assert starts[2] >= ends[1]

    def test_barrier_phase_started_once(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="report", input_bytes=3 * GB)
        services.run()
        job = executor.jobs[0]
        aggregate = job.phases[2]
        assert len(aggregate.vertices) == aggregate.compiled.num_vertices

    def test_all_vertices_terminal(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="production", input_bytes=4 * GB)
        services.run()
        job = executor.jobs[0]
        for phase in job.phases:
            for vertex in phase.vertices:
                assert vertex.state == VertexState.DONE

    def test_slots_all_released(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        assert executor.scheduler.utilization() == 0.0

    def test_servers_used_recorded(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services)
        services.run()
        job = executor.jobs[0]
        assert job.servers_used
        assert all(0 <= s < topo.num_servers for s in job.servers_used)

    def test_output_replication_issued(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, egress_probability=0.0)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        kinds = {t.meta.kind for t in services.transfers}
        assert "replication" in kinds

    def test_control_messages_issued(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services)
        services.run()
        assert any(t.meta.kind == "control" for t in services.transfers)


class TestReadFailures:
    def test_no_failures_with_zero_hazard(self, topo):
        services = FakeServices(topo, congestion=1.0)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        assert executor.applog.read_failures == []

    def test_certain_failure_kills_job(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, non_network_failure_prob=1.0)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        job = executor.jobs[0]
        assert job.state == JobState.KILLED
        assert executor.applog.job_outcome(0) == "killed_read_failure"
        assert executor.applog.read_failures

    def test_kill_releases_slots(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, non_network_failure_prob=1.0)
        submit_job(executor, services, template="report", input_bytes=2 * GB)
        services.run()
        assert executor.scheduler.utilization() == 0.0

    def test_congested_fetch_multiplier_applied(self, topo):
        """With base hazard and full congestion multiplier, failures are
        far more likely than with no congestion."""
        def failure_count(congestion):
            services = FakeServices(topo, congestion=congestion)
            executor = make_executor(
                topo, services, read_failure_base=0.05,
                read_failure_congested_multiplier=15.0,
            )
            submit_job(executor, services, template="report", input_bytes=4 * GB)
            services.run()
            return len(executor.applog.read_failures)

        assert failure_count(1.0) > failure_count(0.0)


class TestEvacuationAndIngestion:
    def test_evacuation_moves_blocks(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, initial_data_per_server=1 * GB,
                                 evacuation_rate=0.0)
        schedule = WorkloadSchedule(jobs=[], ingestions=[], evacuations=[],
                                    duration=10.0)
        executor.install_schedule(schedule)
        executor._run_evacuation()
        services.run()
        assert any(t.meta.kind == "evacuation" for t in services.transfers)
        assert executor.applog.evacuations

    def test_ingestion_replicates(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        external = topo.num_nodes - 1
        executor._start_ingestion(external, 512 * MB)
        services.run()
        kinds = [t.meta.kind for t in services.transfers]
        assert "ingest" in kinds
        assert "replication" in kinds

    def test_ingest_flows_originate_external(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        external = topo.num_nodes - 1
        executor._start_ingestion(external, 512 * MB)
        services.run()
        for transfer in services.transfers:
            if transfer.meta.kind == "ingest":
                assert transfer.src == external


class TestLocality:
    def test_extract_reads_local_when_uncontended(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services)
        submit_job(executor, services, template="interactive", input_bytes=1 * GB)
        services.run()
        fetched = [t for t in services.transfers if t.meta.kind == "fetch"
                   and t.meta.phase_index == 0]
        assert fetched == []  # every extract read its block locally

    def test_zero_locality_bias_produces_remote_reads(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, locality_bias=0.0,
                                 locality_wait=0.0)
        submit_job(executor, services, template="interactive", input_bytes=1 * GB)
        services.run()
        fetched = [t for t in services.transfers if t.meta.kind == "fetch"]
        assert fetched  # placements ignore data location, reads go remote


class TestPartitionSkew:
    def test_shuffle_bytes_conserved_under_skew(self, topo):
        """Skewed partitioning must conserve each producer's output."""
        services = FakeServices(topo)
        executor = make_executor(topo, services, partition_skew_sigma=1.0)
        submit_job(executor, services, template="report", input_bytes=3 * GB)
        services.run()
        job = executor.jobs[0]
        partition_out = sum(
            v.output_bytes for v in job.phases[1].vertices
            if v.state == VertexState.DONE
        )
        aggregate_in = sum(
            v.total_input_bytes for v in job.phases[2].vertices
        )
        assert aggregate_in == pytest.approx(partition_out, rel=1e-9)

    def test_skew_makes_buckets_uneven(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, partition_skew_sigma=1.0)
        submit_job(executor, services, template="report", input_bytes=8 * GB)
        services.run()
        job = executor.jobs[0]
        inputs = [v.total_input_bytes for v in job.phases[2].vertices]
        assert max(inputs) > 1.5 * min(inputs)

    def test_zero_sigma_uniform(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, partition_skew_sigma=0.0)
        submit_job(executor, services, template="report", input_bytes=8 * GB)
        services.run()
        job = executor.jobs[0]
        inputs = [v.total_input_bytes for v in job.phases[2].vertices]
        assert max(inputs) == pytest.approx(min(inputs), rel=1e-9)


class TestRackEvacuation:
    def test_multiple_servers_same_rack(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, initial_data_per_server=1 * GB,
                                 evacuation_servers=3)
        executor._run_evacuation()
        services.run()
        evacuated = [record.server for record in executor.applog.evacuations]
        assert len(evacuated) == 3
        racks = {topo.rack_of(server) for server in evacuated}
        assert len(racks) == 1

    def test_single_server_mode(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, initial_data_per_server=1 * GB,
                                 evacuation_servers=1)
        executor._run_evacuation()
        services.run()
        assert len(executor.applog.evacuations) == 1


class TestLocalReadFailures:
    def test_local_only_jobs_can_fail(self, topo):
        """Bad disks strike local reads: congestion-free jobs still have
        a failure baseline (the Fig 8 control group)."""
        services = FakeServices(topo)
        executor = make_executor(topo, services, non_network_failure_prob=1.0)
        submit_job(executor, services, template="interactive",
                   input_bytes=512 * MB)
        services.run()
        assert executor.applog.read_failures
        failure = executor.applog.read_failures[0]
        assert failure.src == failure.dst  # a local read

    def test_local_failures_zero_when_disabled(self, topo):
        services = FakeServices(topo)
        executor = make_executor(topo, services, non_network_failure_prob=0.0)
        submit_job(executor, services, template="interactive",
                   input_bytes=512 * MB)
        services.run()
        assert executor.applog.read_failures == []
