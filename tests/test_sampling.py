"""Sampled-flow measurement substrate (§2's rejected alternative)."""

import numpy as np
import pytest

from repro.core.flows import FlowTable
from repro.instrumentation.sampling import sample_flows, sampling_bias_report


def make_flows(byte_sizes, durations=None):
    n = len(byte_sizes)
    durations = durations if durations is not None else [1.0] * n
    return FlowTable(
        src=np.zeros(n, dtype=np.int64),
        src_port=np.full(n, 8400, dtype=np.int64),
        dst=np.ones(n, dtype=np.int64),
        dst_port=np.arange(n, dtype=np.int64) + 50000,
        protocol=np.full(n, 6, dtype=np.int64),
        start_time=np.zeros(n),
        end_time=np.asarray(durations, dtype=float),
        num_bytes=np.asarray(byte_sizes, dtype=float),
        num_events=np.ones(n, dtype=np.int64),
        job_id=np.zeros(n, dtype=np.int64),
        phase_index=np.zeros(n, dtype=np.int64),
    )


class TestSampleFlows:
    def test_full_rate_sees_everything(self, rng):
        flows = make_flows([1e6, 2e6, 3e6])
        sampled = sample_flows(flows, 1.0, rng)
        assert sampled.detected_fraction == 1.0
        assert len(sampled.flows) == 3
        assert sampled.estimated_bytes.sum() == pytest.approx(
            flows.total_bytes(), rel=0.01
        )

    def test_small_flows_vanish_at_low_rates(self, rng):
        # 1000 single-packet flows at 1-in-1000 sampling: ~63% vanish.
        flows = make_flows([1500.0] * 1000)
        sampled = sample_flows(flows, 1e-3, rng)
        assert sampled.detected_fraction < 0.01

    def test_elephants_survive(self, rng):
        flows = make_flows([1e9])  # ~667k packets
        sampled = sample_flows(flows, 1e-3, rng)
        assert sampled.detected_fraction == 1.0
        assert sampled.estimated_bytes[0] == pytest.approx(1e9, rel=0.2)

    def test_estimator_unbiased_in_aggregate(self, rng):
        flows = make_flows([1e8] * 50)
        sampled = sample_flows(flows, 1e-2, rng)
        assert sampled.estimated_bytes.sum() == pytest.approx(
            flows.total_bytes(), rel=0.05
        )

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            sample_flows(make_flows([1.0]), 0.0, rng)
        with pytest.raises(ValueError):
            sample_flows(make_flows([1.0]), 1.5, rng)

    def test_invalid_packet_size(self, rng):
        with pytest.raises(ValueError):
            sample_flows(make_flows([1.0]), 0.5, rng, packet_bytes=0)


class TestBiasReport:
    def test_duration_bias_direction(self, rng):
        """Sampling skews the visible mix toward long/large flows."""
        short = make_flows([1500.0] * 500, durations=[0.5] * 500)
        long = make_flows([5e8] * 10, durations=[100.0] * 10)
        combined = make_flows(
            [1500.0] * 500 + [5e8] * 10,
            durations=[0.5] * 500 + [100.0] * 10,
        )
        report = sampling_bias_report(combined, 1e-3, rng)
        assert report["seen_frac_under_10s"] < report["true_frac_under_10s"]
        assert report["seen_median_bytes"] > report["true_median_bytes"]

    def test_total_volume_still_estimable(self, rng):
        flows = make_flows([1e8] * 30 + [1500.0] * 300)
        report = sampling_bias_report(flows, 1e-2, rng)
        assert report["estimated_total_bytes"] == pytest.approx(
            report["true_total_bytes"], rel=0.1
        )

    def test_campaign_sampling(self, dataset, rng):
        """On real campaign flows, coarse sampling misses a large share
        of flows while volume stays estimable — §2's trade-off."""
        report = sampling_bias_report(dataset.flows, 1e-4, rng)
        assert report["detected_fraction"] < 0.9
        assert report["estimated_total_bytes"] == pytest.approx(
            report["true_total_bytes"], rel=0.15
        )
