"""Locality-seeking slot scheduler (work-seeks-bandwidth)."""

import numpy as np
import pytest

from repro.workload.scheduler import Placement, PlacementLevel, SlotScheduler


@pytest.fixture()
def scheduler(tiny_topology, rng):
    return SlotScheduler(tiny_topology, rng=rng, slots_per_server=2)


class TestCapacity:
    def test_initial_free_slots(self, scheduler, tiny_topology):
        assert scheduler.total_free_slots() == 2 * tiny_topology.num_servers
        assert scheduler.free_slots(0) == 2
        assert scheduler.utilization() == 0.0

    def test_place_consumes_slot(self, scheduler):
        placement = scheduler.try_place([0])
        assert placement is not None
        assert scheduler.free_slots(placement.server) == 1

    def test_release_returns_slot(self, scheduler):
        placement = scheduler.try_place([0])
        scheduler.release(placement.server)
        assert scheduler.free_slots(placement.server) == 2

    def test_release_without_place_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.release(0)

    def test_exhaustion_returns_none(self, tiny_topology, rng):
        scheduler = SlotScheduler(tiny_topology, rng=rng, slots_per_server=1)
        for _ in range(tiny_topology.num_servers):
            assert scheduler.try_place([]) is not None
        assert scheduler.try_place([0]) is None

    def test_invalid_slots_rejected(self, tiny_topology, rng):
        with pytest.raises(ValueError):
            SlotScheduler(tiny_topology, rng=rng, slots_per_server=0)

    def test_invalid_bias_rejected(self, tiny_topology, rng):
        with pytest.raises(ValueError):
            SlotScheduler(tiny_topology, rng=rng, locality_bias=1.5)


class TestLadder:
    def test_local_preferred(self, scheduler):
        placement = scheduler.try_place([7, 3])
        assert placement.level == PlacementLevel.LOCAL
        assert placement.server == 7  # preference order wins

    def test_preference_order_respected(self, scheduler):
        first = scheduler.try_place([4, 9])
        second = scheduler.try_place([4, 9])
        third = scheduler.try_place([4, 9])
        assert [p.server for p in (first, second, third)] == [4, 4, 9]

    def test_rack_fallback(self, scheduler, tiny_topology):
        target = 0
        # Fill the preferred server completely.
        for _ in range(2):
            scheduler.try_place([target])
        placement = scheduler.try_place([target])
        assert placement.level == PlacementLevel.RACK
        assert tiny_topology.rack_of(placement.server) == tiny_topology.rack_of(target)

    def test_vlan_fallback(self, scheduler, tiny_topology):
        rack0 = list(tiny_topology.servers_in_rack(0))
        for server in rack0:
            for _ in range(2):
                scheduler.try_place([server])
        placement = scheduler.try_place([rack0[0]])
        assert placement.level == PlacementLevel.VLAN
        assert tiny_topology.vlan_of(placement.server) == tiny_topology.vlan_of(rack0[0])

    def test_cluster_fallback(self, tiny_topology, rng):
        scheduler = SlotScheduler(tiny_topology, rng=rng, slots_per_server=1)
        vlan0_servers = [
            s
            for rack in tiny_topology.racks_in_vlan(0)
            for s in tiny_topology.servers_in_rack(rack)
        ]
        for server in vlan0_servers:
            scheduler.try_place([server])
        placement = scheduler.try_place([vlan0_servers[0]])
        assert placement.level == PlacementLevel.CLUSTER
        assert tiny_topology.vlan_of(placement.server) != 0

    def test_no_preference_places_somewhere(self, scheduler):
        placement = scheduler.try_place([])
        assert placement is not None
        assert placement.level == PlacementLevel.CLUSTER

    def test_external_preferences_ignored(self, scheduler, tiny_topology):
        external = tiny_topology.num_nodes - 1
        placement = scheduler.try_place([external])
        assert placement is not None
        assert placement.server < tiny_topology.num_servers


class TestMaxLevel:
    def test_local_only_refuses_when_full(self, scheduler):
        for _ in range(2):
            scheduler.try_place([5])
        refused = scheduler.try_place([5], max_level=PlacementLevel.LOCAL)
        assert refused is None
        # but a full-ladder request succeeds
        assert scheduler.try_place([5]) is not None

    def test_local_only_accepts_free_preferred(self, scheduler):
        placement = scheduler.try_place([5], max_level=PlacementLevel.LOCAL)
        assert placement == Placement(server=5, level=PlacementLevel.LOCAL)

    def test_rack_level_stops_at_rack(self, scheduler, tiny_topology):
        rack0 = list(tiny_topology.servers_in_rack(0))
        for server in rack0:
            for _ in range(2):
                scheduler.try_place([server])
        refused = scheduler.try_place([rack0[0]], max_level=PlacementLevel.RACK)
        assert refused is None


class TestLocalityBias:
    def test_zero_bias_spreads(self, tiny_topology):
        """With locality off, placements on a preferred server occur at
        roughly the uniform rate."""
        rng = np.random.default_rng(0)
        scheduler = SlotScheduler(tiny_topology, rng=rng, slots_per_server=10**6,
                                  locality_bias=0.0)
        hits = 0
        trials = 400
        for _ in range(trials):
            placement = scheduler.try_place([0, 1, 2])
            if placement.server in (0, 1, 2):
                hits += 1
        expected = 3 / tiny_topology.num_servers
        assert hits / trials < 3 * expected

    def test_full_bias_always_local_when_free(self, scheduler):
        for _ in range(20):
            placement = scheduler.try_place([10])
            assert placement.level != PlacementLevel.CLUSTER
            scheduler.release(placement.server)
