"""Scope-like job compilation."""

import math

import pytest

from repro.util.units import GB, MB
from repro.workload.scope import (
    STANDARD_TEMPLATES,
    JobSpec,
    JobTemplate,
    PhaseTemplate,
    PhaseType,
    compile_job,
)


def make_spec(template_name: str = "report", input_bytes: float = 4 * GB) -> JobSpec:
    return JobSpec(
        name="job",
        template=STANDARD_TEMPLATES[template_name],
        input_bytes=input_bytes,
        submit_time=0.0,
    )


class TestTemplates:
    def test_standard_templates_all_start_with_extract(self):
        for template in STANDARD_TEMPLATES.values():
            assert template.phases[0].phase_type == PhaseType.EXTRACT

    def test_template_requires_extract_first(self):
        with pytest.raises(ValueError):
            JobTemplate(
                name="bad",
                phases=(PhaseTemplate(PhaseType.AGGREGATE, selectivity=1.0),),
                min_input_bytes=1,
                max_input_bytes=2,
            )

    def test_template_rejects_bad_size_range(self):
        with pytest.raises(ValueError):
            JobTemplate(
                name="bad",
                phases=(PhaseTemplate(PhaseType.EXTRACT, selectivity=1.0),),
                min_input_bytes=10,
                max_input_bytes=5,
            )

    def test_template_rejects_unknown_home_scope(self):
        with pytest.raises(ValueError):
            JobTemplate(
                name="bad",
                phases=(PhaseTemplate(PhaseType.EXTRACT, selectivity=1.0),),
                min_input_bytes=1,
                max_input_bytes=2,
                home_scope="continent",
            )

    def test_selectivity_positive(self):
        with pytest.raises(ValueError):
            PhaseTemplate(PhaseType.EXTRACT, selectivity=0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            JobSpec(name="x", template=STANDARD_TEMPLATES["report"],
                    input_bytes=0, submit_time=0.0)
        with pytest.raises(ValueError):
            JobSpec(name="x", template=STANDARD_TEMPLATES["report"],
                    input_bytes=1, submit_time=-1.0)


class TestCompile:
    def test_extract_one_vertex_per_block(self):
        job = compile_job(make_spec(input_bytes=4 * GB), block_size=256 * MB)
        assert job.phases[0].num_vertices == math.ceil(4 * GB / (256 * MB))

    def test_extract_cap(self):
        job = compile_job(make_spec(input_bytes=400 * GB), block_size=256 * MB,
                          max_extract_vertices=100)
        assert job.phases[0].num_vertices == 100

    def test_pipelined_partition_matches_extract(self):
        job = compile_job(make_spec("report"))
        extract, partition = job.phases[0], job.phases[1]
        assert partition.pipelined
        assert partition.num_vertices == extract.num_vertices

    def test_aggregate_bucket_sizing(self):
        job = compile_job(make_spec("report", input_bytes=8 * GB),
                          target_bucket_bytes=512 * MB)
        aggregate = job.phases[2]
        expected = math.ceil(aggregate.input_bytes / (512 * MB))
        assert aggregate.num_vertices == min(expected, 64)

    def test_aggregate_cap(self):
        job = compile_job(make_spec("report", input_bytes=19 * GB),
                          target_bucket_bytes=64 * MB, max_vertices_per_phase=16)
        assert job.phases[2].num_vertices == 16

    def test_byte_flow_through_selectivities(self):
        spec = make_spec("report", input_bytes=10 * GB)
        job = compile_job(spec)
        running = spec.input_bytes
        for phase, template in zip(job.phases, spec.template.phases):
            assert phase.input_bytes == pytest.approx(running)
            running *= template.selectivity
            assert phase.output_bytes == pytest.approx(running)

    def test_output_bytes(self):
        spec = make_spec("interactive", input_bytes=1 * GB)
        job = compile_job(spec)
        assert job.output_bytes == pytest.approx(1 * GB * 0.10 * 0.05)

    def test_every_phase_has_a_vertex(self):
        job = compile_job(make_spec("production", input_bytes=10 * GB))
        assert all(phase.num_vertices >= 1 for phase in job.phases)

    def test_production_has_combine(self):
        job = compile_job(make_spec("production", input_bytes=10 * GB))
        assert job.phases[-1].phase_type == PhaseType.COMBINE

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            compile_job(make_spec(), block_size=0)

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            compile_job(make_spec(), max_vertices_per_phase=0)
        with pytest.raises(ValueError):
            compile_job(make_spec(), max_extract_vertices=0)
