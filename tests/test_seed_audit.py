"""Seed audit: every seeded CLI entry point is reproducible.

Two layers: (1) an argparse-tree sweep asserting the set of entry
points accepting a seed is exactly the audited set — a new seeded
command must be added here or the audit fails; (2) per-entry-point
determinism checks comparing content across two invocations with the
same seed, using a manifest fingerprint that masks wall-clock noise.
"""

from __future__ import annotations

import argparse
import hashlib
import json

import pytest

from repro.cli import _build_parser, main
from repro.experiments.common import clear_dataset_cache

#: Entry points (subcommand paths) audited for seeded determinism.
AUDITED = {
    ("simulate",): "--seed",
    ("trace", "record"): "--seed",
    ("figures",): "--seed",
    ("ablations",): "--seed",
    ("campaign", "run"): "--base-seed",
    ("campaign", "status"): "--base-seed",
    ("validate",): "--seed",
}


def _seeded_entry_points(parser, path=()):
    """Walk the argparse tree for subcommands taking a seed option."""
    found = {}
    seeds = [
        option
        for action in parser._actions
        for option in action.option_strings
        if option in ("--seed", "--base-seed")
    ]
    if seeds:
        found[path] = seeds[0]
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name, sub in action.choices.items():
                found.update(_seeded_entry_points(sub, path + (name,)))
    return found


def test_audit_covers_every_seeded_entry_point():
    found = _seeded_entry_points(_build_parser())
    assert found == AUDITED, (
        "seeded CLI entry points changed; extend the determinism audit "
        f"below (found {sorted(found)}, audited {sorted(AUDITED)})"
    )


def _manifest_fingerprint(path) -> str:
    """Content hash of a run manifest minus wall-clock noise."""
    data = json.loads(path.read_text())
    data.pop("created_at", None)
    data.pop("wall_seconds", None)
    data.pop("timings", None)
    metrics = data.get("metrics", {})
    for name in [k for k in metrics if "wall" in k or "second" in k]:
        metrics.pop(name)
    return hashlib.sha256(
        json.dumps(data, sort_keys=True).encode()
    ).hexdigest()


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Seed determinism must not be an artefact of the dataset cache."""
    clear_dataset_cache()
    yield
    clear_dataset_cache()


def _run_twice(argv_factory, fingerprint):
    outcomes = []
    for attempt in range(2):
        clear_dataset_cache()
        argv = argv_factory(attempt)
        assert main(argv) == 0, argv
        outcomes.append(fingerprint(attempt))
    assert outcomes[0] == outcomes[1]
    return outcomes[0]


def test_simulate_manifest_hash_stable(tmp_path):
    manifests = [tmp_path / f"m{i}.json" for i in range(2)]

    fingerprint = _run_twice(
        lambda i: ["simulate", "--racks", "3", "--servers-per-rack", "4",
                   "--duration", "25", "--seed", "9",
                   "--manifest-out", str(manifests[i])],
        lambda i: _manifest_fingerprint(manifests[i]),
    )
    assert fingerprint
    # The dataset content hash itself must also be pinned and equal.
    hashes = {
        json.loads(m.read_text())["extra"]["dataset_content_hash"]
        for m in manifests
    }
    assert len(hashes) == 1


def test_trace_record_chunks_stable(tmp_path):
    def chunk_hashes(i):
        manifest = json.loads(
            (tmp_path / f"t{i}.reprotrace" / "manifest.json").read_text()
        )
        return [entry["sha256"] for entry in manifest["chunks"]]

    hashes = _run_twice(
        lambda i: ["trace", "record", "--racks", "3",
                   "--servers-per-rack", "4", "--duration", "25",
                   "--seed", "9", "--out", str(tmp_path / f"t{i}.reprotrace")],
        chunk_hashes,
    )
    assert hashes  # at least one chunk was recorded


def test_figures_output_stable(capsys):
    outputs = []
    for _ in range(2):
        clear_dataset_cache()
        assert main(["figures", "fig02", "--seed", "13"]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_ablations_output_stable(capsys):
    outputs = []
    for _ in range(2):
        assert main(["ablations", "gravity", "--seed", "13"]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]


def test_validate_manifest_hash_stable(tmp_path, recorded_trace):
    manifests = [tmp_path / f"v{i}.json" for i in range(2)]
    _run_twice(
        lambda i: ["validate", str(recorded_trace),
                   "--manifest-out", str(manifests[i])],
        lambda i: _manifest_fingerprint(manifests[i]),
    )


def test_campaign_status_queue_id_stable(tmp_path, capsys):
    """Status inspection derives the same queue id on every invocation."""
    outputs = []
    for _ in range(2):
        assert main(["campaign", "status", "--seeds", "2", "--base-seed", "7",
                     "--experiments", "fig02",
                     "--cache-dir", str(tmp_path)]) == 0
        outputs.append(capsys.readouterr().out)
    assert outputs[0] == outputs[1]
    assert "queue " in outputs[0]


@pytest.mark.slow
def test_campaign_run_content_hashes_stable(tmp_path):
    def seed_hashes(i):
        manifest = json.loads((tmp_path / f"c{i}.json").read_text())
        return [
            run["content_hash"]
            for run in manifest["extra"]["campaign"]["per_seed"]
        ]

    hashes = _run_twice(
        lambda i: ["campaign", "run", "--seeds", "1",
                   "--experiments", "fig02", "--no-disk-cache",
                   "--manifest-out", str(tmp_path / f"c{i}.json")],
        seed_hashes,
    )
    assert len(hashes) == 1
