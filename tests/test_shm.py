"""Shared-memory dataset hand-off: publish/attach round-trips, cleanup.

The scheduler treats shared memory strictly as a fast path — these
tests pin the contract that makes that safe: attach returns exactly
what was published (bit-identical, dtype/shape preserved), any failure
mode degrades to ``None`` (never an exception), and every block a
campaign creates is unlinkable by the parent exactly once.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import shm

pytestmark = pytest.mark.skipif(
    not shm.HAVE_SHM, reason="multiprocessing.shared_memory unavailable"
)


def _arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(17)
    return {
        "utilization": rng.random((6, 40)),
        "observed_links": np.arange(9, dtype=int),
    }


class TestPublishAttach:
    def test_round_trip_is_bit_identical(self):
        arrays = _arrays()
        manifest = shm.publish_arrays("deadbeef" * 8, arrays)
        try:
            attached = shm.attach_arrays(manifest)
            assert attached is not None
            assert set(attached) == set(arrays)
            for name, array in arrays.items():
                assert attached[name].dtype == array.dtype
                assert attached[name].shape == array.shape
                np.testing.assert_array_equal(attached[name], array)
        finally:
            shm.unlink_manifest(manifest)

    def test_attached_arrays_are_copies(self):
        arrays = _arrays()
        manifest = shm.publish_arrays("cafebabe" * 8, arrays)
        try:
            attached = shm.attach_arrays(manifest)
            attached["utilization"][0, 0] = -1.0
            again = shm.attach_arrays(manifest)
            assert again["utilization"][0, 0] == arrays["utilization"][0, 0]
        finally:
            shm.unlink_manifest(manifest)

    def test_manifest_is_json_safe_and_sized(self):
        arrays = _arrays()
        manifest = shm.publish_arrays("0123abcd" * 8, arrays)
        try:
            round_tripped = json.loads(json.dumps(manifest))
            assert round_tripped["arrays"].keys() == arrays.keys()
            expected = sum(a.nbytes for a in arrays.values())
            assert shm.manifest_nbytes(manifest) == expected
        finally:
            shm.unlink_manifest(manifest)

    def test_attach_after_unlink_returns_none(self):
        manifest = shm.publish_arrays("feedface" * 8, _arrays())
        assert shm.unlink_manifest(manifest) == len(manifest["arrays"])
        assert shm.attach_arrays(manifest) is None
        # A second unlink finds nothing and does not raise.
        assert shm.unlink_manifest(manifest) == 0

    def test_attach_rejects_foreign_manifests(self):
        assert shm.attach_arrays({}) is None
        assert shm.attach_arrays({"version": 999, "arrays": {}}) is None
        assert shm.attach_arrays({
            "version": shm.SHM_MANIFEST_VERSION,
            "arrays": {"utilization": {
                "shm": "repro-does-not-exist-xyz",
                "dtype": "float64", "shape": [2, 2], "nbytes": 32,
            }},
        }) is None


class TestSharedSegmentTracker:
    def test_record_is_idempotent_and_unlinks_duplicates(self):
        fingerprint = "ab" * 32
        first = shm.publish_arrays(fingerprint, _arrays())
        duplicate = shm.publish_arrays(fingerprint, _arrays())
        tracker = shm.SharedSegmentTracker()
        tracker.record(fingerprint, first)
        tracker.record(fingerprint, first)  # same manifest: no-op
        assert len(tracker) == 1
        # A takeover republish loses: its blocks are freed immediately.
        tracker.record(fingerprint, duplicate)
        assert shm.attach_arrays(duplicate) is None
        assert shm.attach_arrays(first) is not None
        assert tracker.unlink_all() == len(first["arrays"])
        assert shm.attach_arrays(first) is None

    def test_sweep_adopts_orphan_manifests(self, tmp_path):
        fingerprint = "cd" * 32
        manifest = shm.publish_arrays(fingerprint, _arrays())
        (tmp_path / f"{fingerprint}.shm.json").write_text(json.dumps(manifest))
        tracker = shm.SharedSegmentTracker()
        tracker.sweep(tmp_path, [fingerprint])
        assert len(tracker) == 1
        assert tracker.total_nbytes == shm.manifest_nbytes(manifest)
        assert tracker.unlink_all() == len(manifest["arrays"])

    def test_sweep_ignores_unknown_and_corrupt_files(self, tmp_path):
        (tmp_path / "ffff.shm.json").write_text("{not json")
        stranger = {"version": shm.SHM_MANIFEST_VERSION, "token": "other",
                    "arrays": {}}
        (tmp_path / ("ee" * 32 + ".shm.json")).write_text(json.dumps(stranger))
        tracker = shm.SharedSegmentTracker()
        tracker.sweep(tmp_path, ["aa" * 32])
        assert len(tracker) == 0
