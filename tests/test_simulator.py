"""End-to-end simulator integration invariants.

These tests assert system-level conservation and consistency properties
on the session-wide small campaign: the kind of invariants that catch
wiring bugs between the workload executor, the transport, and the
instrumentation.
"""

import pytest

from repro.config import SimulationConfig
from repro.cluster.topology import ClusterSpec
from repro.instrumentation.events import DIRECTION_SEND
from repro.simulation.simulator import Simulator, simulate
from repro.workload.generator import WorkloadConfig
from repro.workload.job import JobState


class TestCampaignInvariants:
    def test_transfers_completed(self, dataset):
        assert dataset.result.stats["transfers_completed"] > 100

    def test_jobs_mostly_finish(self, dataset):
        jobs = dataset.result.jobs
        finished = sum(
            1 for j in jobs.values()
            if j.state in (JobState.SUCCEEDED, JobState.KILLED)
        )
        assert finished >= 0.8 * len(jobs)

    def test_send_side_event_bytes_match_internal_transfers(self, dataset):
        """Socket send events account exactly for transfers whose source
        is an instrumented (in-cluster) server."""
        topo = dataset.result.topology
        internal = sum(
            t.size for t in dataset.result.transfers if not topo.is_external(t.src)
        )
        logged = dataset.result.socket_log.total_bytes(DIRECTION_SEND)
        assert logged == pytest.approx(internal, rel=1e-6)

    def test_flow_bytes_match_transfer_bytes(self, dataset):
        """Reconstructed flows conserve every transferred byte (send-side
        preference plus external fallback covers all transfers)."""
        total_transfers = sum(t.size for t in dataset.result.transfers)
        assert dataset.flows.total_bytes() == pytest.approx(total_transfers, rel=1e-6)

    def test_no_link_utilization_above_one(self, dataset):
        assert dataset.utilization.max() <= 1.0 + 0.05

    def test_link_bytes_match_transfer_bytes_times_hops(self, dataset):
        """Total link-bytes equal the hop-weighted sum of transfer sizes
        (fluid conservation across the network)."""
        router = dataset.result.router
        expected = sum(
            t.size * len(router.path_links(t.src, t.dst))
            for t in dataset.result.transfers
        )
        # In-flight flows at campaign end contribute link bytes without a
        # completed transfer record, so the tracker may hold slightly more.
        tracked = dataset.result.link_loads.link_totals().sum()
        assert tracked >= expected * (1 - 1e-9)
        assert tracked <= expected * 1.2 + 1e6

    def test_tm_total_matches_event_bytes(self, dataset):
        tm_total = dataset.tm10.total().sum()
        # Event bytes: send side plus receive-only (external-source) rows.
        assert tm_total == pytest.approx(dataset.flows.total_bytes(), rel=1e-6)

    def test_applog_consistent_with_jobs(self, dataset):
        applog = dataset.result.applog
        jobs = dataset.result.jobs
        assert set(applog.jobs_seen()) == set(jobs.keys())
        for record in applog.job_ends:
            state = jobs[record.job_id].state
            expected = "succeeded" if state == JobState.SUCCEEDED else "killed_read_failure"
            assert record.outcome == expected

    def test_servers_by_job_matches_runtime(self, dataset):
        placements = dataset.result.applog.servers_by_job()
        for job_id, job in dataset.result.jobs.items():
            if job.servers_used:
                assert placements.get(job_id) == job.servers_used

    def test_dataset_passes_all_invariants(self, dataset, assert_invariants):
        """The session campaign survives the full checker registry."""
        report = assert_invariants(dataset)
        assert report.checkers_run >= 9

    def test_determinism(self):
        """Identical configs produce identical campaigns."""
        config = SimulationConfig(
            cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=3,
                                external_hosts=1),
            workload=WorkloadConfig(job_arrival_rate=0.2),
            duration=40.0,
            seed=99,
        )
        first = simulate(config)
        second = simulate(config)
        assert len(first.transfers) == len(second.transfers)
        assert first.stats == second.stats
        first_sizes = [t.size for t in first.transfers]
        second_sizes = [t.size for t in second.transfers]
        assert first_sizes == second_sizes

    def test_seed_changes_campaign(self):
        base = SimulationConfig(
            cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=3,
                                external_hosts=1),
            workload=WorkloadConfig(job_arrival_rate=0.2),
            duration=40.0,
            seed=1,
        )
        other = base.with_seed(2)
        assert simulate(base).stats != simulate(other).stats


class TestServices:
    def test_local_transfer_completes_instantly(self):
        config = SimulationConfig(
            cluster=ClusterSpec(racks=2, servers_per_rack=2, racks_per_vlan=2),
            duration=1.0,
        )
        sim = Simulator(config)
        done = []
        from repro.simulation.transport import TransferMeta
        sim.start_transfer(0, 0, 100.0, TransferMeta(kind="fetch"), done.append)
        assert len(done) == 1
        assert done[0].duration == 0.0

    def test_max_path_utilization_empty_initially(self):
        config = SimulationConfig(
            cluster=ClusterSpec(racks=2, servers_per_rack=2, racks_per_vlan=2),
            duration=1.0,
        )
        sim = Simulator(config)
        assert sim.max_path_utilization(0, 1, 0.0, 1.0) == 0.0

    def test_fairness_mode_flows_through(self):
        config = SimulationConfig(
            cluster=ClusterSpec(racks=2, servers_per_rack=2, racks_per_vlan=2),
            duration=1.0,
            fairness="bottleneck",
        )
        assert Simulator(config).transport.fairness == "bottleneck"

    def test_invalid_fairness_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(fairness="magic")

    def test_rate_interval_validated(self):
        with pytest.raises(ValueError):
            SimulationConfig(rate_update_interval=-1.0)
