"""Statistics toolkit, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    ecdf,
    fraction_at_or_below,
    log_histogram,
    logarithmic_fit,
    pearson_correlation,
    percentile,
    weighted_ecdf,
)

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-6, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestEcdf:
    def test_basic_evaluation(self):
        cdf = ecdf([1.0, 2.0, 2.0, 3.0])
        assert cdf.evaluate(0.5)[0] == 0.0
        assert cdf.evaluate(1.0)[0] == pytest.approx(0.25)
        assert cdf.evaluate(2.0)[0] == pytest.approx(0.75)
        assert cdf.evaluate(10.0)[0] == 1.0

    def test_median(self):
        assert ecdf([5.0, 1.0, 3.0]).median() == 3.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError):
            ecdf([1.0]).quantile(1.5)

    def test_empty(self):
        cdf = ecdf([])
        assert cdf.n == 0
        assert cdf.evaluate(1.0)[0] == 0.0

    def test_quantile_of_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([]).quantile(0.5)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, samples):
        cdf = ecdf(samples)
        probs = cdf.probabilities
        assert np.all(np.diff(probs) >= -1e-12)
        assert probs[-1] == pytest.approx(1.0)
        assert np.all(probs > 0)

    @given(st.lists(finite_floats, min_size=1, max_size=100), finite_floats)
    @settings(max_examples=60, deadline=None)
    def test_evaluate_matches_count(self, samples, point):
        cdf = ecdf(samples)
        expected = sum(1 for s in samples if s <= point) / len(samples)
        assert cdf.evaluate(point)[0] == pytest.approx(expected)

    @given(st.lists(finite_floats, min_size=1, max_size=100),
           st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_quantile_inverse(self, samples, q):
        cdf = ecdf(samples)
        value = cdf.quantile(q)[0]
        assert cdf.evaluate(value)[0] >= q - 1e-12


class TestWeightedEcdf:
    def test_weight_fractions(self):
        cdf = weighted_ecdf([1.0, 2.0, 3.0], [1.0, 1.0, 2.0])
        assert cdf.evaluate(1.0)[0] == pytest.approx(0.25)
        assert cdf.evaluate(2.0)[0] == pytest.approx(0.5)
        assert cdf.evaluate(3.0)[0] == pytest.approx(1.0)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_ecdf([1.0], [-1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_ecdf([1.0, 2.0], [1.0])

    def test_zero_total_weight_is_empty(self):
        assert weighted_ecdf([1.0, 2.0], [0.0, 0.0]).n == 0

    @given(
        st.lists(
            st.tuples(finite_floats, st.floats(min_value=0.0, max_value=1e6)),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_manual_weight_sum(self, pairs):
        values = [p[0] for p in pairs]
        weights = [p[1] for p in pairs]
        total = sum(weights)
        cdf = weighted_ecdf(values, weights)
        if total == 0:
            assert cdf.n == 0
            return
        point = values[0]
        expected = sum(w for v, w in pairs if v <= point) / total
        assert cdf.evaluate(point)[0] == pytest.approx(expected, rel=1e-9)


class TestPercentileHelpers:
    def test_percentile(self):
        assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_fraction_at_or_below(self):
        assert fraction_at_or_below([1, 2, 3, 4], 2) == 0.5

    def test_fraction_empty(self):
        assert fraction_at_or_below([], 1) == 0.0


class TestLogHistogram:
    def test_counts_sum(self):
        hist = log_histogram([1.0, 10.0, 100.0], bins=5)
        assert hist.total == 3

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log_histogram([1.0, 0.0])

    def test_densities_integrate_to_one(self):
        hist = log_histogram(np.exp(np.linspace(1, 5, 50)), bins=8)
        widths = np.diff(hist.bin_edges)
        assert float((hist.densities * widths).sum()) == pytest.approx(1.0)

    def test_bin_centers_inside_edges(self):
        hist = log_histogram([2.0, 4.0, 8.0], bins=4)
        assert np.all(hist.bin_centers > hist.bin_edges[0])
        assert np.all(hist.bin_centers < hist.bin_edges[-1])


class TestCorrelationAndFit:
    def test_perfect_positive_correlation(self):
        assert pearson_correlation([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_negative_correlation(self):
        assert pearson_correlation([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)

    def test_constant_series_gives_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    def test_log_fit_recovers_coefficients(self):
        x = np.linspace(1, 50, 40)
        y = -0.7 * np.log(x) + 2.0
        a, b = logarithmic_fit(x, y)
        assert a == pytest.approx(-0.7, abs=1e-9)
        assert b == pytest.approx(2.0, abs=1e-9)

    def test_log_fit_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            logarithmic_fit([0.0, 1.0], [1.0, 2.0])
