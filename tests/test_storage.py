"""Log serialisation, compression and round-trip fidelity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrumentation.events import SocketEventLog
from repro.instrumentation.storage import (
    compression_report,
    deserialize_log,
    serialize_log,
)


def build_log(rows):
    log = SocketEventLog()
    for row in rows:
        log.append(**row)
    log.finalize()
    return log


def sample_row(timestamp=1.0, server=0, num_bytes=100.0):
    return dict(
        timestamp=timestamp, server=server, direction=0, src=0, src_port=8400,
        dst=1, dst_port=50001, protocol=6, num_bytes=num_bytes,
        job_id=7, phase_index=2,
    )


class TestSerialize:
    def test_requires_finalized(self):
        log = SocketEventLog()
        log.append(**sample_row())
        with pytest.raises(ValueError):
            serialize_log(log)

    def test_compression_shrinks(self):
        rows = [sample_row(timestamp=float(i)) for i in range(500)]
        serialized = serialize_log(build_log(rows))
        assert serialized.compressed_size < serialized.raw_size
        assert serialized.compression_ratio > 5.0

    def test_records_are_etw_style(self):
        serialized = serialize_log(build_log([sample_row()]))
        text = serialized.raw.decode()
        assert "event=SocketOp" in text
        assert "operation=send" in text
        assert "host=server-0" in text

    def test_empty_log(self):
        serialized = serialize_log(build_log([]))
        round_tripped = deserialize_log(serialized)
        assert len(round_tripped) == 0


class TestRoundTrip:
    def test_exact_fields(self):
        rows = [sample_row(timestamp=2.25, server=3, num_bytes=42.5)]
        log = build_log(rows)
        back = deserialize_log(serialize_log(log))
        original = log.row(0)
        restored = back.row(0)
        assert restored.server == original.server
        assert restored.src_port == original.src_port
        assert restored.dst_port == original.dst_port
        assert restored.job_id == original.job_id
        assert restored.phase_index == original.phase_index
        assert restored.timestamp == pytest.approx(original.timestamp, abs=1e-6)
        assert restored.num_bytes == pytest.approx(original.num_bytes, abs=0.05)

    def test_event_count_preserved(self):
        rows = [sample_row(timestamp=float(i), server=i % 4) for i in range(50)]
        log = build_log(rows)
        back = deserialize_log(serialize_log(log))
        assert len(back) == len(log)

    def test_bytes_preserved_within_rounding(self):
        rows = [sample_row(num_bytes=float(b)) for b in range(1, 100)]
        log = build_log(rows)
        back = deserialize_log(serialize_log(log))
        assert back.total_bytes(None) == pytest.approx(
            log.total_bytes(None), abs=0.05 * len(rows)
        )

    def test_malformed_rejected(self):
        serialized = serialize_log(build_log([sample_row()]))
        import zlib
        from repro.instrumentation.storage import SerializedLog
        broken = SerializedLog(raw=b"junk", compressed=zlib.compress(b"junk"))
        with pytest.raises(ValueError):
            deserialize_log(broken)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e5),
                st.integers(min_value=0, max_value=50),
                st.floats(min_value=0.1, max_value=1e9),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, triples):
        rows = [
            sample_row(timestamp=t, server=s, num_bytes=b) for t, s, b in triples
        ]
        log = build_log(rows)
        back = deserialize_log(serialize_log(log))
        assert len(back) == len(log)
        assert np.allclose(
            np.sort(back.column("num_bytes")),
            np.sort(log.column("num_bytes")),
            atol=0.05,
        )


class TestReport:
    def test_report_fields(self):
        rows = [sample_row(timestamp=float(i)) for i in range(100)]
        report = compression_report(build_log(rows))
        assert report["events"] == 100
        assert report["raw_bytes"] > report["compressed_bytes"] > 0
        assert report["compression_ratio"] > 1.0
        assert report["bytes_per_event"] > 50
