"""Streaming/mergeable analyses equal their in-memory counterparts."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.core.congestion import congestion_summary
from repro.core.flows import DEFAULT_INACTIVITY_TIMEOUT, reconstruct_flows
from repro.core.streaming import (
    FlowStatsSketch,
    StreamingCongestion,
    StreamingFlows,
    StreamingTrafficMatrix,
)
from repro.core.traffic_matrix import tm_series_from_events
from repro.instrumentation.events import (
    DIRECTION_RECV,
    DIRECTION_SEND,
    SocketEventLog,
)

FLOW_FIELDS = (
    "src", "src_port", "dst", "dst_port", "protocol",
    "start_time", "end_time", "num_bytes", "num_events",
    "job_id", "phase_index",
)


def small_topology():
    return ClusterTopology(ClusterSpec(racks=2, servers_per_rack=4))


def build_log(events):
    log = SocketEventLog()
    for event in events:
        defaults = dict(
            server=0, direction=DIRECTION_SEND, src=0, src_port=8400,
            dst=1, dst_port=50000, protocol=6, num_bytes=100.0,
            job_id=1, phase_index=0,
        )
        defaults.update(event)
        log.append(**defaults)
    log.finalize()
    return log


def synthetic_log(num_events=400, seed=3, num_servers=8):
    """A messy, realistic log: many tuples, both directions, skewed ties."""
    rng = np.random.default_rng(seed)
    log = SocketEventLog()
    times = np.sort(rng.uniform(0.0, 120.0, size=num_events))
    for t in times:
        src = int(rng.integers(0, num_servers))
        dst = int((src + 1 + rng.integers(0, num_servers - 1)) % num_servers)
        direction = DIRECTION_SEND if rng.random() < 0.7 else DIRECTION_RECV
        log.append(
            timestamp=float(t),
            server=src if direction == DIRECTION_SEND else dst,
            direction=direction,
            src=src, src_port=int(8400 + rng.integers(0, 3)),
            dst=dst, dst_port=int(50000 + rng.integers(0, 4)),
            protocol=6, num_bytes=float(rng.integers(1, 10_000)),
            job_id=int(rng.integers(-1, 4)), phase_index=0,
        )
    log.finalize()
    return log


def split_log(log, boundaries):
    """Cut a finalized log into chunks at the given row boundaries."""
    columns = log.to_columns()
    edges = [0, *boundaries, len(log)]
    chunks = []
    for start, stop in zip(edges[:-1], edges[1:]):
        chunks.append(
            SocketEventLog.from_columns(
                {name: col[start:stop] for name, col in columns.items()}
            )
        )
    return chunks


def assert_flow_tables_equal(a, b):
    for name in FLOW_FIELDS:
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestStreamingTrafficMatrix:
    @pytest.mark.parametrize("boundaries", [[], [1], [200], [50, 51, 300]])
    def test_chunked_equals_inmemory(self, boundaries):
        log = synthetic_log()
        topology = small_topology()
        expected = tm_series_from_events(log, topology, 10.0, 120.0)
        acc = StreamingTrafficMatrix(topology, 10.0, 120.0)
        for chunk in split_log(log, boundaries):
            acc.update(chunk)
        got = acc.finalize()
        assert np.array_equal(got.matrices, expected.matrices)
        assert np.array_equal(got.endpoint_ids, expected.endpoint_ids)

    def test_merge_equals_inmemory(self):
        log = synthetic_log()
        topology = small_topology()
        expected = tm_series_from_events(log, topology, 10.0, 120.0)
        chunks = split_log(log, [90, 180, 300])
        partials = []
        for chunk in chunks:
            partials.append(StreamingTrafficMatrix(topology, 10.0, 120.0).update(chunk))
        merged = partials[0]
        for other in partials[1:]:
            merged.merge(other)
        got = merged.finalize()
        assert np.array_equal(got.matrices, expected.matrices)

    def test_empty_chunks_are_noops(self):
        topology = small_topology()
        acc = StreamingTrafficMatrix(topology, 10.0, 60.0)
        acc.update(build_log([]))
        series = acc.finalize()
        assert series.matrices.sum() == 0.0
        assert series.num_windows == 6


class TestStreamingFlows:
    @pytest.mark.parametrize("boundaries", [[], [1], [199], [100, 101, 250]])
    def test_chunked_equals_inmemory(self, boundaries):
        log = synthetic_log()
        expected = reconstruct_flows(log)
        acc = StreamingFlows()
        for chunk in split_log(log, boundaries):
            acc.update(chunk)
        assert_flow_tables_equal(acc.finalize(), expected)

    def test_merge_equals_inmemory(self):
        log = synthetic_log(num_events=600, seed=9)
        expected = reconstruct_flows(log)
        chunks = split_log(log, [150, 300, 450])
        partials = [StreamingFlows().update(chunk) for chunk in chunks]
        merged = partials[0]
        for other in partials[1:]:
            merged.merge(other)
        assert_flow_tables_equal(merged.finalize(), expected)

    def test_send_preference_resolved_across_chunks(self):
        # Tuple seen only as RECV in chunk 1, then as SEND in chunk 2:
        # the recv events must be dropped globally, not per chunk.
        log = build_log([
            {"timestamp": 0.0, "direction": DIRECTION_RECV, "server": 1},
            {"timestamp": 1.0, "direction": DIRECTION_SEND, "server": 0},
        ])
        expected = reconstruct_flows(log)
        acc = StreamingFlows()
        for chunk in split_log(log, [1]):
            acc.update(chunk)
        assert_flow_tables_equal(acc.finalize(), expected)

    def test_empty_finalize(self):
        table = StreamingFlows().finalize()
        assert len(table) == 0
        assert table.protocol.dtype == np.int16


class TestInactivityTimeoutBoundary:
    """Flow splitting at the inactivity timeout (satellite: boundary tests)."""

    def _log_with_gap(self, gap):
        return build_log([
            {"timestamp": 0.0},
            {"timestamp": 0.0 + gap},
            {"timestamp": 0.0 + gap + 1.0},
        ])

    def test_gap_exactly_at_timeout_does_not_split(self):
        log = self._log_with_gap(DEFAULT_INACTIVITY_TIMEOUT)
        assert len(reconstruct_flows(log)) == 1

    def test_gap_just_under_timeout_does_not_split(self):
        log = self._log_with_gap(DEFAULT_INACTIVITY_TIMEOUT - 1e-6)
        assert len(reconstruct_flows(log)) == 1

    def test_gap_just_over_timeout_splits(self):
        log = self._log_with_gap(np.nextafter(DEFAULT_INACTIVITY_TIMEOUT, np.inf))
        assert len(reconstruct_flows(log)) == 2

    @pytest.mark.parametrize("gap", [
        DEFAULT_INACTIVITY_TIMEOUT,
        DEFAULT_INACTIVITY_TIMEOUT - 1e-6,
        np.nextafter(DEFAULT_INACTIVITY_TIMEOUT, np.inf),
        DEFAULT_INACTIVITY_TIMEOUT + 0.5,
    ])
    def test_streamed_matches_inmemory_at_boundary(self, gap):
        log = self._log_with_gap(gap)
        expected = reconstruct_flows(log)
        for boundaries in ([], [1], [2], [1, 2]):
            acc = StreamingFlows()
            for chunk in split_log(log, boundaries):
                acc.update(chunk)
            assert_flow_tables_equal(acc.finalize(), expected)

    def test_merge_joins_flows_across_boundary_gap(self):
        # Two accumulators whose boundary flows are within the timeout
        # must produce ONE flow after merge, matching the in-memory run.
        log = self._log_with_gap(1.0)
        expected = reconstruct_flows(log)
        left, right = split_log(log, [2])
        merged = StreamingFlows().update(left)
        merged.merge(StreamingFlows().update(right))
        assert_flow_tables_equal(merged.finalize(), expected)
        assert len(merged.finalize()) == 1


class TestStreamingCongestion:
    def _utilization(self, seed=5, links=6, bins=40):
        rng = np.random.default_rng(seed)
        return rng.uniform(0.0, 1.0, size=(links, bins))

    @pytest.mark.parametrize("cuts", [[], [1], [20], [13, 14, 31]])
    def test_chunked_equals_inmemory(self, cuts):
        util = self._utilization()
        expected = congestion_summary(util, threshold=0.7)
        acc = StreamingCongestion(num_links=util.shape[0], threshold=0.7)
        edges = [0, *cuts, util.shape[1]]
        for start, stop in zip(edges[:-1], edges[1:]):
            acc.update(util[:, start:stop])
        got = acc.finalize()
        assert got.episodes == expected.episodes
        assert got.longest_episode == expected.longest_episode
        assert got.links_with_any_congestion == expected.links_with_any_congestion

    def test_merge_stitches_runs_across_boundary(self):
        util = np.ones((2, 10))  # every bin hot: one long run per link
        expected = congestion_summary(util, threshold=0.7)
        left = StreamingCongestion(num_links=2, threshold=0.7)
        left.update(util[:, :5])
        right = StreamingCongestion(num_links=2, threshold=0.7)
        right.update(util[:, 5:], start_bin=5)
        got = left.merge(right).finalize()
        assert got.episodes == expected.episodes
        assert got.longest_episode == expected.longest_episode

    def test_non_contiguous_update_rejected(self):
        acc = StreamingCongestion(num_links=1)
        acc.update(np.zeros((1, 4)))
        with pytest.raises(ValueError):
            acc.update(np.zeros((1, 4)), start_bin=9)


class TestFlowStatsSketch:
    def test_merge_order_invariant(self):
        log = synthetic_log(num_events=500, seed=21)
        flows = reconstruct_flows(log)
        whole = FlowStatsSketch().update(flows)

        half = len(flows) // 2
        import dataclasses
        first = dataclasses.replace(
            flows, **{f: getattr(flows, f)[:half] for f in FLOW_FIELDS}
        )
        second = dataclasses.replace(
            flows, **{f: getattr(flows, f)[half:] for f in FLOW_FIELDS}
        )
        a = FlowStatsSketch().update(first).merge(FlowStatsSketch().update(second))
        b = FlowStatsSketch().update(second).merge(FlowStatsSketch().update(first))
        assert a.finalize() == b.finalize() == whole.finalize()

    def test_quantiles_reasonable(self):
        log = synthetic_log(num_events=500, seed=22)
        flows = reconstruct_flows(log)
        sketch = FlowStatsSketch().update(flows)
        median = sketch.approx_quantile("bytes", 0.5)
        exact = float(np.median(flows.num_bytes))
        # Log-spaced bins: the approximation lands within one decade.
        assert median / 10 <= exact <= median * 10

    def test_empty_sketch(self):
        stats = FlowStatsSketch().finalize()
        assert stats["flows"] == 0
