"""The one-call characterisation facade."""

import pytest

from repro.core.summary import characterize


class TestCharacterize:
    @pytest.fixture(scope="class")
    def report(self, dataset):
        return characterize(dataset.result)

    def test_components_populated(self, report):
        assert len(report.flows) > 0
        assert report.tm_series.num_windows > 0
        assert report.congestion.num_links > 0
        assert report.durations.total_flows == len(report.flows)

    def test_consistent_with_direct_analyses(self, report, dataset):
        from repro.core import duration_stats, reconstruct_flows

        direct = duration_stats(reconstruct_flows(dataset.result.socket_log))
        assert report.durations.frac_flows_under_10s == pytest.approx(
            direct.frac_flows_under_10s
        )

    def test_render_mentions_paper_anchors(self, report):
        text = report.render()
        assert "IMC 2009" in text
        assert "89% / 99.5%" in text
        assert "86%" in text
        assert "15 ms" in text

    def test_threshold_override(self, dataset):
        strict = characterize(dataset.result, threshold=0.95)
        lax = characterize(dataset.result, threshold=0.5)
        assert (
            strict.congestion.frac_links_hot_at_least_10s
            <= lax.congestion.frac_links_hot_at_least_10s
        )
