"""Parametric synthetic traffic model (§4.1 as a generator)."""

import numpy as np
import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.synthetic.arrivals import StopAndGoArrivals
from repro.synthetic.model import SyntheticTrafficModel, gravity_synthetic_tm
from repro.core.flow_stats import estimate_mode_spacing


@pytest.fixture(scope="module")
def topo():
    return ClusterTopology(
        ClusterSpec(racks=10, servers_per_rack=10, racks_per_vlan=5,
                    external_hosts=0)
    )


class TestSyntheticTm:
    def test_talk_probabilities_match_parameters(self, topo):
        model = SyntheticTrafficModel(scatter_gather_rate=0.0)
        rng = np.random.default_rng(0)
        in_rack_talks = 0
        in_rack_pairs = 0
        cross_talks = 0
        cross_pairs = 0
        for _ in range(10):
            tm = model.sample_server_tm(topo, rng)
            racks = np.array([topo.rack_of(s) for s in range(topo.num_servers)])
            same = racks[:, None] == racks[None, :]
            np.fill_diagonal(same, False)
            cross = ~same
            np.fill_diagonal(cross, False)
            in_rack_talks += (tm[same] > 0).sum()
            in_rack_pairs += same.sum()
            cross_talks += (tm[cross] > 0).sum()
            cross_pairs += cross.sum()
        assert in_rack_talks / in_rack_pairs == pytest.approx(0.11, abs=0.02)
        assert cross_talks / cross_pairs == pytest.approx(0.005, abs=0.003)

    def test_log_volume_range(self, topo):
        model = SyntheticTrafficModel(scatter_gather_rate=0.0)
        tm = model.sample_server_tm(topo, np.random.default_rng(1))
        nonzero = tm[tm > 0]
        logs = np.log(nonzero)
        assert logs.min() >= 4.0 - 1e-9
        assert logs.max() <= 20.0 + 1e-9

    def test_in_rack_pairs_skew_larger(self, topo):
        model = SyntheticTrafficModel(scatter_gather_rate=0.0)
        rng = np.random.default_rng(2)
        in_logs, cross_logs = [], []
        for _ in range(10):
            tm = model.sample_server_tm(topo, rng)
            racks = np.array([topo.rack_of(s) for s in range(topo.num_servers)])
            same = racks[:, None] == racks[None, :]
            np.fill_diagonal(same, False)
            in_logs.extend(np.log(tm[same][tm[same] > 0]))
            cross = ~same
            np.fill_diagonal(cross, False)
            cross_logs.extend(np.log(tm[cross][tm[cross] > 0]))
        assert np.median(in_logs) > np.median(cross_logs)

    def test_scatter_gather_adds_hubs(self, topo):
        model = SyntheticTrafficModel(scatter_gather_rate=5.0, scatter_fanout=0.5)
        tm = model.sample_server_tm(topo, np.random.default_rng(3))
        fanouts = np.maximum((tm > 0).sum(axis=1), (tm > 0).sum(axis=0))
        assert fanouts.max() >= 0.4 * topo.num_servers

    def test_tor_tm_zero_diagonal(self, topo):
        model = SyntheticTrafficModel()
        tor = model.sample_tor_tm(topo, np.random.default_rng(4))
        assert np.all(np.diag(tor) == 0.0)
        assert tor.shape == (topo.num_racks, topo.num_racks)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticTrafficModel(prob_talk_in_rack=1.5)
        with pytest.raises(ValueError):
            SyntheticTrafficModel(log_min=10, log_max=5)
        with pytest.raises(ValueError):
            SyntheticTrafficModel(job_clusters=-1)


class TestGravityTm:
    def test_total_volume(self):
        tm = gravity_synthetic_tm(10, np.random.default_rng(0), total_volume=1e9)
        assert tm.sum() == pytest.approx(1e9)
        assert np.all(np.diag(tm) == 0.0)

    def test_dense(self):
        tm = gravity_synthetic_tm(10, np.random.default_rng(0))
        off_diagonal = tm[~np.eye(10, dtype=bool)]
        assert (off_diagonal > 0).all()

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            gravity_synthetic_tm(1, np.random.default_rng(0))


class TestArrivals:
    def test_gaps_positive_and_bounded(self):
        process = StopAndGoArrivals()
        gaps = process.sample_gaps(1000, np.random.default_rng(0))
        assert (gaps > 0).all()
        assert gaps.max() <= process.max_gap

    def test_periodic_modes_present(self):
        process = StopAndGoArrivals(quantum=0.015)
        gaps = process.sample_gaps(8000, np.random.default_rng(1))
        spacing = estimate_mode_spacing(gaps)
        assert spacing == pytest.approx(0.015, abs=0.002)

    def test_times_within_duration(self):
        process = StopAndGoArrivals()
        times = process.sample_times(5.0, np.random.default_rng(2), start=10.0)
        assert times.size > 0
        assert times.min() >= 10.0
        assert times.max() < 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StopAndGoArrivals(quantum=0.0)
        with pytest.raises(ValueError):
            StopAndGoArrivals(burst_weight=1.5)
        with pytest.raises(ValueError):
            StopAndGoArrivals().sample_gaps(-1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            StopAndGoArrivals().sample_times(0.0, np.random.default_rng(0))
