"""Telemetry subsystem: metrics registry, tracer, manifests, wiring."""

import json

import pytest

from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig
from repro.experiments.common import build_dataset, clear_dataset_cache
from repro.simulation.simulator import simulate
from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    RunManifest,
    Telemetry,
    Tracer,
    aggregate_spans,
    read_jsonl,
)
from repro.workload.generator import WorkloadConfig


def tiny_config(seed: int = 3) -> SimulationConfig:
    return SimulationConfig(
        cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=3,
                            external_hosts=1),
        workload=WorkloadConfig(job_arrival_rate=0.2),
        duration=15.0,
        seed=seed,
    )


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_name_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_labels_separate_series(self):
        registry = MetricsRegistry()
        ok = registry.counter("jobs", outcome="succeeded")
        bad = registry.counter("jobs", outcome="killed")
        ok.inc(3)
        bad.inc()
        assert ok.value == 3 and bad.value == 1
        snap = registry.snapshot()
        assert snap["jobs{outcome=succeeded}"]["value"] == 3
        assert snap["jobs{outcome=killed}"]["value"] == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("x", k1="a", k2="b")
        b = registry.counter("x", k2="b", k1="a")
        assert a is b

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_max(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4.0)
        gauge.max(2.0)
        assert gauge.value == 4.0
        gauge.max(9.0)
        assert gauge.value == 9.0


class TestHistogram:
    def test_summary_stats(self):
        hist = MetricsRegistry().histogram("sizes")
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == 10.0
        assert hist.mean == 2.5
        assert hist.min_value == 1.0
        assert hist.max_value == 4.0

    def test_quantiles_on_known_data(self):
        hist = MetricsRegistry().histogram("q")
        for value in range(1, 101):
            hist.observe(float(value))
        assert abs(hist.quantile(0.5) - 50) <= 2
        assert abs(hist.quantile(0.9) - 90) <= 2

    def test_reservoir_is_bounded_and_deterministic(self):
        def build():
            hist = MetricsRegistry(reservoir_size=64).histogram("r")
            for value in range(10_000):
                hist.observe(float(value))
            return hist

        first, second = build(), build()
        assert len(first._reservoir) == 64
        assert first._reservoir == second._reservoir
        assert first.count == 10_000

    def test_empty_snapshot_is_json_safe(self):
        snap = MetricsRegistry().histogram("empty").snapshot()
        json.dumps(snap)
        assert snap["count"] == 0 and snap["min"] == 0.0


class TestTracer:
    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        by_name = {span.name: span for span in tracer.spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        by_name = {span.name: span for span in tracer.spans}
        assert 0 <= by_name["inner"].duration <= by_name["outer"].duration

    def test_attrs_at_open_and_during(self):
        tracer = Tracer()
        with tracer.span("s", seed=7) as span:
            span.set(events=42)
        assert tracer.spans[0].attrs == {"seed": 7, "events": 42}

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.current is None
        assert tracer.spans[0].name == "boom"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", seed=1):
            with tracer.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(path) == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)  # every line is standalone JSON
        loaded = read_jsonl(path)
        assert {span["name"] for span in loaded} == {"a", "b"}
        child = next(span for span in loaded if span["name"] == "b")
        parent = next(span for span in loaded if span["name"] == "a")
        assert child["parent_id"] == parent["span_id"]
        assert parent["attrs"] == {"seed": 1}

    def test_aggregate_rollup(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("stage"):
                pass
        rollup = aggregate_spans(tracer.spans)
        assert rollup["stage"]["count"] == 3
        assert rollup["stage"]["max_s"] >= rollup["stage"]["mean_s"] >= 0


class TestNullTelemetry:
    def test_disabled_instruments_are_inert(self):
        NULL_TELEMETRY.counter("x").inc(5)
        NULL_TELEMETRY.gauge("y").set(3.0)
        NULL_TELEMETRY.histogram("z").observe(1.0)
        with NULL_TELEMETRY.span("s") as span:
            span.set(k=1)
        assert NULL_TELEMETRY.counter("x").value == 0
        assert len(NULL_TELEMETRY.metrics) == 0
        assert NULL_TELEMETRY.tracer.spans == []

    def test_instruments_are_shared_singletons(self):
        assert NULL_TELEMETRY.counter("a") is NULL_TELEMETRY.counter("b")


class TestSimulatorWiring:
    def test_simulate_records_metrics_and_spans(self):
        tele = Telemetry()
        result = simulate(tiny_config(), telemetry=tele)
        snap = tele.metrics.snapshot()
        assert len(snap) >= 10
        assert snap["engine.events_processed"]["value"] == result.stats[
            "events_processed"
        ]
        assert snap["transport.rate_recomputes"]["value"] == result.stats[
            "rate_recomputes"
        ]
        assert snap["workload.jobs_started"]["value"] > 0
        assert snap["engine.batch_size"]["count"] > 0
        names = {span.name for span in tele.tracer.spans}
        assert {"simulate.campaign", "simulate.engine_run",
                "simulate.workload_schedule",
                "simulate.transport_settle"} <= names
        campaign = next(
            s for s in tele.tracer.spans if s.name == "simulate.campaign"
        )
        engine_run = next(
            s for s in tele.tracer.spans if s.name == "simulate.engine_run"
        )
        assert engine_run.parent_id == campaign.span_id

    def test_telemetry_does_not_change_campaign_statistics(self):
        plain = simulate(tiny_config())
        traced = simulate(tiny_config(), telemetry=Telemetry())
        # Instrumentation must not perturb the workload: identical
        # traffic, job outcomes and logs (engine-internal counts differ
        # only when heartbeats add wakeup events, not used here).
        assert traced.stats["transfers_completed"] == plain.stats[
            "transfers_completed"
        ]
        assert traced.stats["socket_events"] == plain.stats["socket_events"]
        assert traced.stats["jobs_finished"] == plain.stats["jobs_finished"]

    def test_heartbeat_fires_and_reports_progress(self):
        beats = []
        simulate(tiny_config(), telemetry=Telemetry(),
                 heartbeat=beats.append, heartbeat_interval=5.0)
        assert len(beats) == 3  # t = 5, 10, 15
        assert [beat["now"] for beat in beats] == [5.0, 10.0, 15.0]
        final = beats[-1]
        assert final["percent"] == 100.0
        assert final["events_processed"] > 0
        assert {"active_flows", "jobs_started", "jobs_finished",
                "transfers_completed", "wall_seconds"} <= final.keys()

    def test_heartbeat_requires_positive_interval(self):
        from repro.simulation.simulator import Simulator

        simulator = Simulator(tiny_config())
        with pytest.raises(ValueError):
            simulator.attach_heartbeat(0.0, lambda snap: None)


class TestDatasetCacheCounters:
    def test_miss_then_hit(self):
        clear_dataset_cache()
        tele = Telemetry()
        config = tiny_config(seed=99)
        try:
            first = build_dataset(config, telemetry=tele)
            second = build_dataset(config, telemetry=tele)
        finally:
            clear_dataset_cache()
        assert first is second
        snap = tele.metrics.snapshot()
        assert snap["dataset.cache_misses"]["value"] == 1
        assert snap["dataset.cache_hits"]["value"] == 1
        names = {span.name for span in tele.tracer.spans}
        assert {"build_dataset", "build_dataset.simulate",
                "build_dataset.reconstruct_flows",
                "build_dataset.tm_series"} <= names


class TestRunManifest:
    def test_capture_write_load_round_trip(self, tmp_path):
        tele = Telemetry()
        config = tiny_config(seed=21)
        with tele.span("test.run"):
            simulate(config, telemetry=tele)
        manifest = RunManifest.capture("simulate", config, tele,
                                       extra={"note": "unit test"})
        assert manifest.seed == 21
        assert manifest.config["duration"] == 15.0
        assert manifest.config["cluster"]["racks"] == 3
        assert manifest.git_version
        assert len(manifest.metrics) >= 10
        assert "test.run" in manifest.timings
        assert manifest.wall_seconds > 0
        path = tmp_path / "manifest.json"
        manifest.write(path)
        loaded = RunManifest.load(path)
        assert loaded.seed == manifest.seed
        assert loaded.metrics == manifest.metrics
        assert loaded.extra == {"note": "unit test"}

    def test_manifest_is_plain_json(self, tmp_path):
        tele = Telemetry()
        manifest = RunManifest.capture("simulate", tiny_config(), tele)
        path = tmp_path / "m.json"
        manifest.write(path)
        data = json.loads(path.read_text())
        assert data["schema_version"] == 1
        assert data["command"] == "simulate"


class TestGitDescribe:
    def test_memoized_per_process(self, monkeypatch):
        from repro.telemetry import manifest as manifest_mod

        monkeypatch.delenv("REPRO_GIT_DESCRIBE", raising=False)
        monkeypatch.setattr(manifest_mod, "_GIT_DESCRIBE_CACHE", None)
        calls = []

        def fake_uncached():
            calls.append(1)
            return "v1.2.3-4-gabcdef"

        monkeypatch.setattr(manifest_mod, "_git_describe_uncached",
                            fake_uncached)
        assert manifest_mod.git_describe() == "v1.2.3-4-gabcdef"
        assert manifest_mod.git_describe() == "v1.2.3-4-gabcdef"
        assert len(calls) == 1

    def test_env_override_wins_and_is_never_cached(self, monkeypatch):
        from repro.telemetry import manifest as manifest_mod

        monkeypatch.setattr(manifest_mod, "_GIT_DESCRIBE_CACHE", "cached")
        monkeypatch.setenv("REPRO_GIT_DESCRIBE", "pinned-by-env")
        assert manifest_mod.git_describe() == "pinned-by-env"
        monkeypatch.setenv("REPRO_GIT_DESCRIBE", "pinned-again")
        assert manifest_mod.git_describe() == "pinned-again"
        monkeypatch.delenv("REPRO_GIT_DESCRIBE")
        assert manifest_mod.git_describe() == "cached"
