"""Cross-process telemetry fan-in: merge semantics, profiling, export.

Covers the merge algebra instrument-by-instrument (counters sum, gauges
last-writer-win on their timestamps, histogram reservoirs merge with
bounded quantile error), the determinism of span-lane interleaving under
shuffled report arrival, the resource profiler, and the timeline export
and diff surfaces.
"""

import json
import random
import time

import pytest

from repro.telemetry import (
    NULL_TELEMETRY,
    MetricsRegistry,
    ResourceProfiler,
    Telemetry,
    interleave_spans,
    load_spans,
    load_timeline,
    merge_worker_reports,
    phase_totals,
    worker_report,
    write_timeline,
)
from repro.telemetry.export import (
    DEFAULT_DIFF_TOLERANCE,
    diff_observables,
    format_diff_table,
    load_observable,
    render_timeline,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.resources import (
    PHASE_COMPUTE,
    PHASE_IMPORT,
    PHASE_SPAWN,
    PHASE_WAIT,
    process_create_time,
    read_cpu_seconds,
    read_rss_bytes,
)


class TestCounterMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("events").inc(10)
        b.counter("events").inc(32)
        a.merge_state(b.export_state())
        assert a.counter("events").value == 42

    def test_missing_counter_is_created(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only_in_b", worker="1").inc(7)
        a.merge_state(b.export_state())
        assert a.counter("only_in_b", worker="1").value == 7

    def test_labelled_series_stay_separate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs", outcome="ok").inc(2)
        b.counter("jobs", outcome="ok").inc(3)
        b.counter("jobs", outcome="killed").inc(1)
        a.merge_state(b.export_state())
        assert a.counter("jobs", outcome="ok").value == 5
        assert a.counter("jobs", outcome="killed").value == 1


class TestGaugeMerge:
    def test_latest_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(5)
        b.gauge("depth").set(9)  # written after a's
        state = b.export_state()
        a.merge_state(state)
        assert a.gauge("depth").value == 9

    def test_stale_write_is_ignored(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.gauge("depth").set(9)
        a.gauge("depth").set(5)  # a is now the latest writer
        a.merge_state(b.export_state())
        assert a.gauge("depth").value == 5

    def test_writes_carry_timestamps(self):
        gauge = MetricsRegistry().gauge("depth")
        assert gauge.updated_at == 0.0
        gauge.set(1)
        first = gauge.updated_at
        assert first > 0
        gauge.max(2)
        assert gauge.updated_at >= first


class TestHistogramMerge:
    def test_exact_moments_combine(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            a.histogram("lat").observe(v)
        for v in (10.0, 20.0):
            b.histogram("lat").observe(v)
        a.merge_state(b.export_state())
        h = a.histogram("lat")
        assert h.count == 5
        assert h.total == 36.0
        assert h.min_value == 1.0
        assert h.max_value == 20.0

    def test_empty_target_adopts_source(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in range(100):
            b.histogram("lat").observe(float(v))
        a.merge_state(b.export_state())
        assert a.histogram("lat").count == 100
        assert a.histogram("lat").quantile(0.5) > 0

    def test_merging_empty_source_is_noop(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat").observe(4.0)
        a.merge_state(b.export_state() + [b.histogram("lat").state()])
        assert a.histogram("lat").count == 1

    def test_reservoir_stays_bounded(self):
        a, b = MetricsRegistry(reservoir_size=64), MetricsRegistry(reservoir_size=64)
        for v in range(1000):
            a.histogram("lat").observe(float(v))
            b.histogram("lat").observe(float(v) + 1000.0)
        a.merge_state(b.export_state())
        assert len(a.histogram("lat")._reservoir) <= 64

    def test_merged_quantiles_within_error_bounds(self):
        # Two disjoint uniform halves of [0, 2000): the merged median
        # must land near 1000 and p90 near 1800, inside the usual
        # reservoir error for a 512-slot sample.
        a, b = MetricsRegistry(), MetricsRegistry()
        rng = random.Random(7)
        lo = [rng.uniform(0, 1000) for _ in range(4000)]
        hi = [rng.uniform(1000, 2000) for _ in range(4000)]
        for v in lo:
            a.histogram("lat").observe(v)
        for v in hi:
            b.histogram("lat").observe(v)
        a.merge_state(b.export_state())
        h = a.histogram("lat")
        assert h.count == 8000
        assert h.quantile(0.5) == pytest.approx(1000, abs=150)
        assert h.quantile(0.9) == pytest.approx(1800, abs=150)

    def test_merge_is_deterministic(self):
        def merged():
            a, b = MetricsRegistry(), MetricsRegistry()
            for v in range(2000):
                a.histogram("lat").observe(float(v))
                b.histogram("lat").observe(float(v * 3))
            a.merge_state(b.export_state())
            return a.histogram("lat")._reservoir

        assert merged() == merged()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_state([{"kind": "meter", "name": "x"}])


def fake_report(seed: int, pid: int, start: float, *, spans=None, phases=None,
                metrics=None) -> dict:
    return {
        "campaign_id": "test",
        "seed": seed,
        "pid": pid,
        "submitted_at": start,
        "started_at": start,
        "finished_at": start + 1.0,
        "metrics": metrics or [],
        "spans": spans or [],
        "resources": {"pid": pid, "phases": phases or []},
    }


class TestWorkerReport:
    def test_report_carries_context_metrics_spans_profile(self):
        tele = Telemetry()
        tele.counter("seeds").inc()
        with tele.span("work", seed=3):
            pass
        profiler = ResourceProfiler(interval=0.01).start()
        with profiler.phase(PHASE_COMPUTE):
            pass
        profiler.stop()
        report = worker_report(tele, profiler, campaign_id="c1", seed=3,
                               submitted_at=1.0, started_at=2.0)
        assert report["campaign_id"] == "c1"
        assert report["seed"] == 3
        assert report["pid"] == profiler.pid
        assert report["metrics"][0]["value"] == 1
        assert [s["name"] for s in report["spans"]] == ["work"]
        assert report["resources"]["phases"][0]["name"] == PHASE_COMPUTE
        # The report must survive the process boundary as plain JSON.
        json.dumps(report)


class TestMergeWorkerReports:
    def test_lanes_group_by_pid_in_seed_order(self):
        reports = [
            fake_report(2, pid=200, start=10.0),
            fake_report(1, pid=100, start=10.0),
            fake_report(3, pid=100, start=11.5),
        ]
        timeline = merge_worker_reports(reports, campaign_id="c",
                                        window_start=10.0, jobs=2)
        workers = [lane for lane in timeline["lanes"] if lane["label"] != "parent"]
        assert [lane["pid"] for lane in workers] == [100, 200]
        assert [lane["seeds"] for lane in workers] == [[1, 3], [2]]
        assert timeline["seeds"] == [1, 2, 3]

    def test_merge_is_invariant_under_arrival_order(self):
        def build(order):
            reports = [
                fake_report(seed, pid=100 + seed % 2, start=10.0 + seed,
                            spans=[{"name": f"s{seed}", "span_id": seed,
                                    "start": 10.0 + seed, "duration": 0.5}])
                for seed in order
            ]
            timeline = merge_worker_reports(reports, campaign_id="c",
                                            window_start=10.0)
            # The parent merge phase is wall-clock timed — mask it out.
            for lane in timeline["lanes"]:
                if lane["label"] == "parent":
                    lane["segments"] = []
            timeline["window"] = {}
            timeline["coverage"] = 0.0
            timeline["phase_totals"] = {}
            return timeline

        orders = [[1, 2, 3, 4], [4, 3, 2, 1], [2, 4, 1, 3]]
        baseline = build(orders[0])
        for order in orders[1:]:
            assert build(order) == baseline

    def test_interleave_sorts_by_start_then_identity(self):
        spans = [
            {"name": "b", "start": 2.0, "seed": 1, "span_id": 5},
            {"name": "a", "start": 1.0, "seed": 2, "span_id": 9},
            {"name": "c", "start": 2.0, "seed": 0, "span_id": 1},
        ]
        shuffled = list(spans)
        random.Random(3).shuffle(shuffled)
        ordered = interleave_spans(shuffled)
        assert [s["name"] for s in ordered] == ["a", "c", "b"]

    def test_metrics_fold_into_parent_telemetry(self):
        tele = Telemetry()
        worker = MetricsRegistry()
        worker.counter("campaign.seeds_completed").inc(2)
        reports = [fake_report(1, pid=9, start=0.0,
                               metrics=worker.export_state())]
        merge_worker_reports(reports, campaign_id="c", window_start=0.0,
                             telemetry=tele)
        assert tele.metrics.counter("campaign.seeds_completed").value == 2

    def test_null_telemetry_stays_inert(self):
        before = len(NULL_TELEMETRY.metrics)
        reports = [fake_report(1, pid=9, start=0.0)]
        merge_worker_reports(reports, campaign_id="c", window_start=0.0,
                             telemetry=NULL_TELEMETRY)
        assert len(NULL_TELEMETRY.metrics) == before
        assert NULL_TELEMETRY.resource_profiler() is NULL_TELEMETRY.resource_profiler()
        assert NULL_TELEMETRY.resource_profiler().start().profile() == {}

    def test_coverage_and_phase_totals(self):
        phases = [{"name": PHASE_COMPUTE, "start": 10.0, "duration": 1.0}]
        reports = [fake_report(1, pid=9, start=10.0, phases=phases)]
        timeline = merge_worker_reports(reports, campaign_id="c",
                                        window_start=10.0)
        assert 0.0 < timeline["coverage"] <= 1.0
        assert timeline["phase_totals"][PHASE_COMPUTE] == 1.0
        assert phase_totals(timeline)[PHASE_COMPUTE] == 1.0

    def test_round_trips_through_disk(self, tmp_path):
        timeline = merge_worker_reports(
            [fake_report(1, pid=9, start=0.0)],
            campaign_id="c", window_start=0.0)
        path = tmp_path / "timeline.json"
        write_timeline(path, timeline)
        assert load_timeline(path) == timeline

    def test_load_rejects_non_timeline(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError):
            load_timeline(path)


class TestResourceProfiler:
    def test_probes_read_real_values(self):
        assert read_rss_bytes() > 0
        assert read_cpu_seconds() >= 0.0
        assert process_create_time() > 0.0

    def test_profile_shape(self):
        profiler = ResourceProfiler(interval=0.005).start()
        with profiler.phase(PHASE_COMPUTE):
            sum(range(100_000))
        profile = profiler.stop().profile()
        assert profile["pid"] == profiler.pid
        assert profile["peak_rss_bytes"] > 0
        assert profile["cpu_seconds"] >= 0.0
        phases = {p["name"]: p for p in profile["phases"]}
        assert phases[PHASE_COMPUTE]["duration"] > 0.0
        json.dumps(profile)

    def test_stop_is_idempotent(self):
        profiler = ResourceProfiler(interval=0.005).start()
        profiler.stop()
        profiler.stop()

    def test_startup_phases_split_on_submit_time(self):
        created = process_create_time()
        profiler = ResourceProfiler()
        profiler.add_startup_phases(created - 1.0)  # submitted before we existed
        names = [p["name"] for p in profiler.profile()["phases"]]
        assert names == [PHASE_SPAWN, PHASE_IMPORT]

        reused = ResourceProfiler()
        # Submitted after the process existed: a reused/serial worker.
        reused.add_startup_phases(time.time() - 1e-3)
        names = [p["name"] for p in reused.profile()["phases"]]
        assert names == [PHASE_WAIT]


class TestLoadSpans:
    def test_aggregates_multiple_jsonl_files(self, tmp_path):
        for index in (1, 2):
            tele = Telemetry()
            with tele.span("work", file=index):
                pass
            tele.tracer.write_jsonl(tmp_path / f"t{index}.jsonl")
        spans = load_spans(sorted(tmp_path.glob("t*.jsonl")))
        assert len(spans) == 2
        assert {s["source"] for s in spans} == {
            str(tmp_path / "t1.jsonl"), str(tmp_path / "t2.jsonl")}


def tiny_timeline() -> dict:
    phases = [{"name": PHASE_COMPUTE, "start": 10.2, "duration": 0.6}]
    metrics = MetricsRegistry()
    metrics.counter("events").inc(5)
    metrics.histogram("lat").observe(2.0)
    return merge_worker_reports(
        [fake_report(1, pid=9, start=10.0, phases=phases,
                     metrics=metrics.export_state())],
        campaign_id="tiny", window_start=10.0)


class TestExport:
    def test_ascii_gantt_renders_lanes_and_key(self):
        art = render_timeline(tiny_timeline(), width=32)
        assert "campaign timeline — tiny" in art
        assert "worker-0" in art and "parent" in art
        assert "c" in art and "phase key:" in art
        assert "compute" in art

    def test_width_is_validated(self):
        with pytest.raises(ValueError):
            render_timeline(tiny_timeline(), width=2)

    def test_prometheus_text_format(self):
        text = to_prometheus(tiny_timeline()["metrics"])
        assert "# TYPE events counter" in text
        assert "events 5" in text
        assert 'lat{quantile="0.5"} 2' in text
        assert "lat_count 1" in text

    def test_chrome_trace_events(self):
        trace = to_chrome_trace(tiny_timeline())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "thread_name" in names and PHASE_COMPUTE in names
        phase = next(e for e in trace["traceEvents"]
                     if e.get("cat") == "phase")
        assert phase["ph"] == "X"
        assert phase["ts"] == pytest.approx(0.2e6)
        assert phase["dur"] == pytest.approx(0.6e6)
        json.dumps(trace)


class TestDiff:
    def test_identical_payloads_are_all_ok(self):
        rows = diff_observables({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 2.0})
        assert all(row.status == "ok" for row in rows)
        assert all(row.ratio == 1.0 for row in rows)

    def test_statuses_match_bench_compare_contract(self):
        rows = diff_observables(
            {"reg": 1.0, "imp": 1.0, "same": 3.0, "gone": 1.0},
            {"reg": 2.0, "imp": 0.5, "same": 3.0, "fresh": 9.0},
            tolerance=0.25)
        by_name = {row.name: row.status for row in rows}
        assert by_name == {"reg": "regression", "imp": "improved",
                           "same": "ok", "gone": "missing", "fresh": "new"}

    def test_rows_sorted_most_severe_first(self):
        rows = diff_observables({"a": 1.0, "z": 1.0}, {"a": 5.0, "z": 1.0})
        assert rows[0].status == "regression"

    def test_zero_baseline_counts_as_regression(self):
        rows = diff_observables({"a": 0.0}, {"a": 1.0})
        assert rows[0].status == "regression"

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_observables({}, {}, tolerance=-0.1)

    def test_load_observable_from_timeline_and_manifest(self, tmp_path):
        timeline_path = tmp_path / "timeline.json"
        write_timeline(timeline_path, tiny_timeline())
        observed = load_observable(timeline_path)
        assert observed["events"] == 5.0
        assert observed["lat[count]"] == 1.0
        assert observed[f"phase.{PHASE_COMPUTE}_seconds"] == pytest.approx(0.6)
        assert 0.0 < observed["timeline.coverage"] <= 1.0

        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(json.dumps({
            "metrics": {"events": {"type": "counter", "value": 5.0}},
            "extra": {"observability": {"phase_totals": {"compute": 0.6}}},
        }))
        observed = load_observable(manifest_path)
        assert observed["events"] == 5.0
        assert observed["phase.compute_seconds"] == pytest.approx(0.6)

    def test_load_observable_rejects_garbage(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_observable(path)

    def test_table_renders_summary_and_hides_ok(self):
        rows = diff_observables({"a": 1.0, "b": 1.0}, {"a": 5.0, "b": 1.0})
        table = format_diff_table(rows, tolerance=DEFAULT_DIFF_TOLERANCE,
                                  only_changed=True)
        assert "1 regression(s)" in table
        assert "1 unchanged row(s) hidden" in table
        assert "\nb " not in table
