"""Time-binned accumulation, including conservation properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.timeseries import BinAccumulator, split_interval_over_bins


class TestSplitInterval:
    def test_simple_split(self):
        assert split_interval_over_bins(0.5, 2.25, 1.0) == [
            (0, 0.5),
            (1, 1.0),
            (2, 0.25),
        ]

    def test_empty_interval(self):
        assert split_interval_over_bins(1.0, 1.0, 1.0) == []

    def test_inside_one_bin(self):
        assert split_interval_over_bins(0.2, 0.7, 1.0) == [(0, pytest.approx(0.5))]

    def test_bin_aligned(self):
        pieces = split_interval_over_bins(1.0, 3.0, 1.0)
        assert [p[0] for p in pieces] == [1, 2]
        assert all(p[1] == pytest.approx(1.0) for p in pieces)

    def test_backwards_interval_raises(self):
        with pytest.raises(ValueError):
            split_interval_over_bins(2.0, 1.0, 1.0)

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            split_interval_over_bins(0.0, 1.0, 0.0)

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_durations_conserved(self, start, length, width):
        pieces = split_interval_over_bins(start, start + length, width)
        assert sum(p[1] for p in pieces) == pytest.approx(length, rel=1e-9, abs=1e-8)

    @given(
        st.floats(min_value=0.0, max_value=1e4),
        st.floats(min_value=0.001, max_value=100.0),
        st.floats(min_value=0.01, max_value=10.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_bins_contiguous(self, start, length, width):
        pieces = split_interval_over_bins(start, start + length, width)
        indices = [p[0] for p in pieces]
        assert indices == list(range(indices[0], indices[0] + len(indices)))


class TestBinAccumulator:
    def test_point_lands_in_bin(self):
        acc = BinAccumulator(num_keys=2, bin_width=1.0)
        acc.add_point(1, 2.5, 10.0)
        assert acc.series(1)[2] == 10.0
        assert acc.series(0).sum() == 0.0

    def test_interval_integration(self):
        acc = BinAccumulator(num_keys=1, bin_width=1.0)
        acc.add_interval(0, 0.5, 2.5, 4.0)
        series = acc.series(0)
        assert series[0] == pytest.approx(2.0)
        assert series[1] == pytest.approx(4.0)
        assert series[2] == pytest.approx(2.0)

    def test_totals_conserve_rate_times_time(self):
        acc = BinAccumulator(num_keys=1, bin_width=0.7)
        acc.add_interval(0, 0.13, 9.77, 3.0)
        assert acc.totals()[0] == pytest.approx(3.0 * (9.77 - 0.13))

    def test_bulk_matches_scalar(self):
        bulk = BinAccumulator(num_keys=3, bin_width=1.0)
        scalar = BinAccumulator(num_keys=3, bin_width=1.0)
        keys = np.array([0, 2])
        rates = np.array([1.5, 2.5])
        bulk.add_interval_bulk(keys, rates, 0.3, 4.1)
        for key, rate in zip(keys, rates):
            scalar.add_interval(int(key), 0.3, 4.1, float(rate))
        assert np.allclose(bulk.matrix(), scalar.matrix())

    def test_growth_preserves_data(self):
        acc = BinAccumulator(num_keys=1, bin_width=1.0)
        acc.add_point(0, 0.5, 1.0)
        acc.add_point(0, 500.5, 2.0)  # forces growth
        assert acc.series(0)[0] == 1.0
        assert acc.series(0)[500] == 2.0
        assert acc.num_bins == 501

    def test_negative_time_rejected(self):
        acc = BinAccumulator(num_keys=1, bin_width=1.0)
        with pytest.raises(ValueError):
            acc.add_point(0, -0.1, 1.0)
        with pytest.raises(ValueError):
            acc.add_interval(0, -0.1, 1.0, 1.0)

    def test_bin_times(self):
        acc = BinAccumulator(num_keys=1, bin_width=2.0)
        acc.add_point(0, 5.0, 1.0)
        assert list(acc.bin_times()) == [0.0, 2.0, 4.0]

    def test_empty_bulk_noop(self):
        acc = BinAccumulator(num_keys=2, bin_width=1.0)
        acc.add_interval_bulk(np.array([], dtype=int), np.array([]), 0.0, 5.0)
        assert acc.num_bins == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=0, max_value=1e6),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_total_is_sum_of_contributions(self, intervals):
        acc = BinAccumulator(num_keys=1, bin_width=0.9)
        expected = 0.0
        for start, length, rate in intervals:
            acc.add_interval(0, start, start + length, rate)
            expected += rate * length
        assert acc.totals()[0] == pytest.approx(expected, rel=1e-9, abs=1e-6)
