"""Tomography: gravity, tomogravity, sparsity-max, job prior, metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.routing import tor_routing_matrix
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.instrumentation.applog import ApplicationLog
from repro.tomography.gravity import (
    gravity_matrix,
    gravity_prior_for_pairs,
    node_totals_from_tm,
)
from repro.tomography.jobprior import job_affinity_matrix, job_aware_prior
from repro.tomography.metrics import (
    fraction_of_entries_for_volume,
    heavy_hitter_overlap,
    nonzero_count,
    rmsre,
    volume_threshold,
)
from repro.tomography.sparsity import sparsity_max_estimate
from repro.tomography.tomogravity import tomogravity_estimate


@pytest.fixture(scope="module")
def tomo_setup():
    topo = ClusterTopology(
        ClusterSpec(racks=8, servers_per_rack=4, racks_per_vlan=4, external_hosts=0)
    )
    routing, pairs, observed = tor_routing_matrix(topo)
    return topo, routing, pairs, observed


def pair_vector(matrix, pairs):
    return np.array([matrix[i, j] for i, j in pairs])


class TestGravity:
    def test_rank_one_without_diagonal_removal(self):
        out_t = np.array([1.0, 2.0, 3.0])
        in_t = np.array([3.0, 2.0, 1.0])
        matrix = gravity_matrix(out_t, in_t, zero_diagonal=False)
        assert np.linalg.matrix_rank(matrix) == 1
        assert matrix.sum() == pytest.approx(out_t.sum())

    def test_zero_diagonal_preserves_total(self):
        out_t = np.array([5.0, 5.0, 5.0])
        in_t = np.array([5.0, 5.0, 5.0])
        matrix = gravity_matrix(out_t, in_t)
        assert np.all(np.diag(matrix) == 0.0)
        assert matrix.sum() == pytest.approx(15.0)

    def test_proportionality(self):
        out_t = np.array([1.0, 0.0, 2.0])
        in_t = np.array([0.0, 3.0, 3.0])
        matrix = gravity_matrix(out_t, in_t, zero_diagonal=False)
        assert matrix[1].sum() == 0.0
        assert matrix[2, 1] / matrix[0, 1] == pytest.approx(2.0)

    def test_empty_traffic(self):
        matrix = gravity_matrix(np.zeros(3), np.zeros(3))
        assert matrix.sum() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            gravity_matrix(np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            gravity_matrix(np.array([-1.0, 1.0]), np.array([1.0, 1.0]))

    def test_node_totals(self):
        tm = np.array([[0.0, 2.0], [3.0, 0.0]])
        out_t, in_t = node_totals_from_tm(tm)
        assert out_t.tolist() == [2.0, 3.0]
        assert in_t.tolist() == [3.0, 2.0]

    def test_prior_for_pairs_alignment(self):
        out_t = np.array([1.0, 2.0])
        in_t = np.array([2.0, 1.0])
        pairs = [(0, 1), (1, 0)]
        prior = gravity_prior_for_pairs(out_t, in_t, pairs)
        matrix = gravity_matrix(out_t, in_t)
        assert prior.tolist() == [matrix[0, 1], matrix[1, 0]]


class TestTomogravity:
    def test_link_constraints_satisfied(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        rng = np.random.default_rng(0)
        truth = rng.uniform(0, 1e9, size=len(pairs))
        counts = routing @ truth
        out_t = np.zeros(8)
        in_t = np.zeros(8)
        for k, (i, j) in enumerate(pairs):
            out_t[i] += truth[k]
            in_t[j] += truth[k]
        prior = gravity_prior_for_pairs(out_t, in_t, pairs)
        estimate = tomogravity_estimate(routing, counts, prior)
        residual = np.abs(routing @ estimate - counts).sum() / counts.sum()
        assert residual < 0.01
        assert (estimate >= 0).all()

    def test_exact_when_truth_is_gravity(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        out_t = np.linspace(1, 8, 8) * 1e9
        in_t = np.linspace(8, 1, 8) * 1e9
        truth = gravity_prior_for_pairs(out_t, in_t, pairs)
        counts = routing @ truth
        estimate = tomogravity_estimate(routing, counts,
                                        gravity_prior_for_pairs(out_t, in_t, pairs))
        assert rmsre(truth, estimate) < 0.02

    def test_sparse_truth_estimated_poorly(self, tomo_setup):
        """The paper's headline: gravity priors fail on sparse DC TMs."""
        _, routing, pairs, _ = tomo_setup
        rng = np.random.default_rng(1)
        truth = np.zeros(len(pairs))
        hot = rng.choice(len(pairs), size=6, replace=False)
        truth[hot] = rng.lognormal(20, 1, size=6)
        counts = routing @ truth
        out_t = np.zeros(8)
        in_t = np.zeros(8)
        for k, (i, j) in enumerate(pairs):
            out_t[i] += truth[k]
            in_t[j] += truth[k]
        prior = gravity_prior_for_pairs(out_t, in_t, pairs)
        estimate = tomogravity_estimate(routing, counts, prior)
        assert rmsre(truth, estimate) > 0.2

    def test_zero_traffic(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        estimate = tomogravity_estimate(
            routing, np.zeros(routing.shape[0]), np.zeros(len(pairs))
        )
        assert estimate.sum() == 0.0

    def test_shape_validation(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        with pytest.raises(ValueError):
            tomogravity_estimate(routing, np.zeros(3), np.zeros(len(pairs)))
        with pytest.raises(ValueError):
            tomogravity_estimate(routing, np.zeros(routing.shape[0]), np.zeros(2))


class TestSparsityMax:
    def test_recovers_very_sparse_truth(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        truth = np.zeros(len(pairs))
        truth[3] = 1e9
        counts = routing @ truth
        estimate = sparsity_max_estimate(routing, counts, time_limit=10.0)
        assert nonzero_count(estimate) <= 3
        residual = np.abs(routing @ estimate - counts).sum() / counts.sum()
        assert residual < 0.05

    def test_sparser_than_spread_truth(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        rng = np.random.default_rng(2)
        truth = rng.uniform(1e6, 1e8, size=len(pairs))
        counts = routing @ truth
        estimate = sparsity_max_estimate(routing, counts, time_limit=10.0)
        assert nonzero_count(estimate) < nonzero_count(truth)

    def test_zero_counts(self, tomo_setup):
        _, routing, pairs, _ = tomo_setup
        estimate = sparsity_max_estimate(routing, np.zeros(routing.shape[0]))
        assert estimate.sum() == 0.0

    def test_validation(self, tomo_setup):
        _, routing, _, _ = tomo_setup
        with pytest.raises(ValueError):
            sparsity_max_estimate(routing, np.zeros(3))
        with pytest.raises(ValueError):
            sparsity_max_estimate(routing, np.zeros(routing.shape[0]),
                                  tolerance=-1.0)


class TestJobPrior:
    def test_affinity_counts_colocated_jobs(self, tiny_topology):
        applog = ApplicationLog()
        applog.record_vertex_start(0, 0, 0, server=0, locality="LOCAL", time=1.0)
        applog.record_vertex_start(1, 0, 0, server=5, locality="LOCAL", time=1.0)
        affinity = job_affinity_matrix(applog, tiny_topology)
        rack_a = tiny_topology.rack_of(0)
        rack_b = tiny_topology.rack_of(5)
        assert affinity[rack_a, rack_b] == 1.0
        assert affinity[rack_b, rack_a] == 1.0
        assert np.all(np.diag(affinity) == 0.0)

    def test_time_window_filter(self, tiny_topology):
        applog = ApplicationLog()
        applog.record_vertex_start(0, 0, 0, server=0, locality="LOCAL", time=1.0)
        applog.record_vertex_start(1, 0, 0, server=5, locality="LOCAL", time=100.0)
        affinity = job_affinity_matrix(applog, tiny_topology, start=0.0, end=10.0)
        assert affinity.sum() == 0.0  # second vertex excluded, no pair

    def test_prior_boosts_affine_pairs(self):
        out_t = np.full(4, 100.0)
        in_t = np.full(4, 100.0)
        affinity = np.zeros((4, 4))
        affinity[0, 1] = affinity[1, 0] = 10.0
        prior = job_aware_prior(out_t, in_t, affinity, strength=1.0)
        base = gravity_matrix(out_t, in_t)
        assert prior[0, 1] > base[0, 1]
        assert prior.sum() == pytest.approx(base.sum())

    def test_zero_strength_is_gravity(self):
        out_t = np.array([1.0, 2.0, 3.0])
        in_t = np.array([3.0, 2.0, 1.0])
        affinity = np.ones((3, 3))
        prior = job_aware_prior(out_t, in_t, affinity, strength=0.0)
        assert np.allclose(prior, gravity_matrix(out_t, in_t))


class TestMetrics:
    def test_volume_threshold(self):
        x = np.array([100.0, 50.0, 25.0, 10.0, 5.0, 5.0, 5.0])
        # top entries 100+50 = 150 of 200 = 75%
        assert volume_threshold(x, 0.75) == 50.0

    def test_rmsre_perfect(self):
        x = np.array([10.0, 5.0, 1.0])
        assert rmsre(x, x) == 0.0

    def test_rmsre_ignores_small_entries(self):
        truth = np.array([1000.0, 1.0])
        estimate = np.array([1000.0, 100.0])  # huge error on tiny entry
        assert rmsre(truth, estimate, volume_fraction=0.75) == 0.0

    def test_rmsre_relative(self):
        truth = np.array([100.0])
        estimate = np.array([160.0])
        assert rmsre(truth, estimate) == pytest.approx(0.6)

    def test_fraction_for_volume(self):
        x = np.array([75.0, 10.0, 10.0, 5.0])
        assert fraction_of_entries_for_volume(x, 0.75) == pytest.approx(0.25)

    def test_fraction_uniform(self):
        x = np.ones(100)
        assert fraction_of_entries_for_volume(x, 0.75) == pytest.approx(0.75)

    def test_fraction_of_zeros_nan(self):
        assert np.isnan(fraction_of_entries_for_volume(np.zeros(5)))

    def test_nonzero_count_relative_floor(self):
        x = np.array([1e9, 1e-3, 0.0])
        assert nonzero_count(x) == 1

    def test_heavy_hitter_overlap(self):
        truth = np.zeros(100)
        truth[:3] = 1000.0
        estimate = np.zeros(100)
        estimate[0] = 500.0   # true heavy hitter
        estimate[50] = 500.0  # not a heavy hitter
        assert heavy_hitter_overlap(truth, estimate, percentile=97) == 1

    @given(st.integers(min_value=2, max_value=50), st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_threshold_covers_requested_volume(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1e6, size=n)
        threshold = volume_threshold(x, 0.75)
        covered = x[x >= threshold].sum()
        assert covered >= 0.75 * x.sum() - 1e-6


class TestRolePrior:
    def test_directional_affinity(self, tiny_topology):
        from repro.tomography.roleprior import role_affinity_matrix

        applog = ApplicationLog()
        applog.record_phase_start(0, 0, "extract", 0.0)
        applog.record_phase_start(0, 1, "aggregate", 1.0)
        # producer on rack of server 0, consumer on rack of server 5
        applog.record_vertex_start(0, 0, 0, server=0, locality="LOCAL", time=0.5)
        applog.record_vertex_start(1, 0, 1, server=5, locality="LOCAL", time=1.5)
        affinity = role_affinity_matrix(applog, tiny_topology)
        producer_rack = tiny_topology.rack_of(0)
        consumer_rack = tiny_topology.rack_of(5)
        assert affinity[producer_rack, consumer_rack] == 1.0
        assert affinity[consumer_rack, producer_rack] == 0.0  # directional

    def test_job_without_consumers_contributes_nothing(self, tiny_topology):
        from repro.tomography.roleprior import role_affinity_matrix

        applog = ApplicationLog()
        applog.record_phase_start(0, 0, "extract", 0.0)
        applog.record_vertex_start(0, 0, 0, server=0, locality="LOCAL", time=0.5)
        affinity = role_affinity_matrix(applog, tiny_topology)
        assert affinity.sum() == 0.0

    def test_role_prior_preserves_total(self):
        from repro.tomography.roleprior import role_aware_prior

        out_t = np.full(4, 50.0)
        in_t = np.full(4, 50.0)
        affinity = np.zeros((4, 4))
        affinity[0, 2] = 5.0
        prior = role_aware_prior(out_t, in_t, affinity, strength=2.0)
        base = gravity_matrix(out_t, in_t)
        assert prior.sum() == pytest.approx(base.sum())
        assert prior[0, 2] > base[0, 2]
        assert prior[2, 0] < base[2, 0]  # renormalisation shrinks the rest

    def test_time_window(self, tiny_topology):
        from repro.tomography.roleprior import role_affinity_matrix

        applog = ApplicationLog()
        applog.record_phase_start(0, 0, "extract", 0.0)
        applog.record_phase_start(0, 1, "aggregate", 0.0)
        applog.record_vertex_start(0, 0, 0, server=0, locality="LOCAL", time=0.5)
        applog.record_vertex_start(1, 0, 1, server=5, locality="LOCAL", time=50.0)
        affinity = role_affinity_matrix(applog, tiny_topology, start=0.0, end=10.0)
        assert affinity.sum() == 0.0  # the consumer is outside the window
