"""Cluster topology structure (paper Fig 1)."""

import pytest

from repro.cluster.topology import ClusterSpec, ClusterTopology, NodeKind
from repro.util.units import GBPS


class TestClusterSpec:
    def test_defaults_valid(self):
        spec = ClusterSpec()
        assert spec.num_servers == spec.racks * spec.servers_per_rack

    def test_num_vlans_rounds_up(self):
        spec = ClusterSpec(racks=5, racks_per_vlan=2)
        assert spec.num_vlans == 3

    def test_rejects_zero_racks(self):
        with pytest.raises(ValueError):
            ClusterSpec(racks=0)

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            ClusterSpec(servers_per_rack=0)

    def test_rejects_negative_external(self):
        with pytest.raises(ValueError):
            ClusterSpec(external_hosts=-1)


class TestNodeLayout:
    def test_node_kinds(self, tiny_topology):
        topo = tiny_topology
        assert topo.node_kind(0) == NodeKind.SERVER
        assert topo.node_kind(topo.num_servers - 1) == NodeKind.SERVER
        assert topo.node_kind(topo.tor_of_rack(0)) == NodeKind.TOR
        assert topo.node_kind(topo.agg_of_vlan(0)) == NodeKind.AGG
        assert topo.node_kind(topo.core_id) == NodeKind.CORE
        assert topo.node_kind(topo.num_nodes - 1) == NodeKind.EXTERNAL

    def test_node_kind_out_of_range(self, tiny_topology):
        with pytest.raises(ValueError):
            tiny_topology.node_kind(tiny_topology.num_nodes)

    def test_rack_assignment(self, tiny_topology):
        spec = tiny_topology.spec
        for server in range(tiny_topology.num_servers):
            assert tiny_topology.rack_of(server) == server // spec.servers_per_rack

    def test_rack_of_rejects_non_server(self, tiny_topology):
        with pytest.raises(ValueError):
            tiny_topology.rack_of(tiny_topology.num_servers)

    def test_servers_in_rack_partition(self, tiny_topology):
        seen = set()
        for rack in range(tiny_topology.num_racks):
            members = set(tiny_topology.servers_in_rack(rack))
            assert not members & seen
            seen |= members
        assert seen == set(range(tiny_topology.num_servers))

    def test_vlan_groups_racks(self, tiny_topology):
        for vlan in range(tiny_topology.num_vlans):
            for rack in tiny_topology.racks_in_vlan(vlan):
                assert tiny_topology.vlan_of_rack(rack) == vlan

    def test_endpoints_are_servers_plus_external(self, tiny_topology):
        endpoints = tiny_topology.endpoints()
        assert len(endpoints) == (
            tiny_topology.num_servers + tiny_topology.spec.external_hosts
        )
        assert all(tiny_topology.is_endpoint(node) for node in endpoints)

    def test_same_rack_and_vlan(self, tiny_topology):
        spec = tiny_topology.spec
        assert tiny_topology.same_rack(0, 1)
        assert not tiny_topology.same_rack(0, spec.servers_per_rack)
        assert tiny_topology.same_vlan(0, spec.servers_per_rack)
        # external endpoints belong to no rack
        external = tiny_topology.num_nodes - 1
        assert not tiny_topology.same_rack(0, external)
        assert not tiny_topology.same_vlan(0, external)


class TestLinks:
    def test_links_are_duplex(self, tiny_topology):
        for link in tiny_topology.links:
            reverse = tiny_topology.link_between(link.dst, link.src)
            assert reverse.capacity == link.capacity

    def test_link_count(self, tiny_topology):
        spec = tiny_topology.spec
        expected = 2 * (
            tiny_topology.num_servers       # server<->tor
            + tiny_topology.num_racks       # tor<->agg
            + tiny_topology.num_vlans       # agg<->core
            + spec.external_hosts           # external<->core
        )
        assert tiny_topology.num_links == expected

    def test_capacities_match_spec(self):
        spec = ClusterSpec(
            racks=2, servers_per_rack=2, racks_per_vlan=2,
            server_nic_capacity=1 * GBPS, tor_uplink_capacity=5 * GBPS,
        )
        topo = ClusterTopology(spec)
        nic = topo.link_between(0, topo.tor_of_rack(0))
        uplink = topo.link_between(topo.tor_of_rack(0), topo.agg_of_vlan(0))
        assert nic.capacity == 1 * GBPS
        assert uplink.capacity == 5 * GBPS

    def test_inter_switch_links_exclude_servers(self, tiny_topology):
        for link in tiny_topology.inter_switch_links():
            assert tiny_topology.node_kind(link.src) != NodeKind.SERVER
            assert tiny_topology.node_kind(link.dst) != NodeKind.SERVER
            assert not tiny_topology.is_external(link.src)
            assert not tiny_topology.is_external(link.dst)

    def test_server_access_links_touch_servers(self, tiny_topology):
        for link in tiny_topology.server_access_links():
            kinds = {tiny_topology.node_kind(link.src), tiny_topology.node_kind(link.dst)}
            assert NodeKind.SERVER in kinds

    def test_link_ids_dense(self, tiny_topology):
        for index, link in enumerate(tiny_topology.links):
            assert link.link_id == index


class TestAddressing:
    def test_server_ips_unique(self, tiny_topology):
        ips = {tiny_topology.ip_of(s) for s in range(tiny_topology.num_servers)}
        assert len(ips) == tiny_topology.num_servers

    def test_external_ips(self, tiny_topology):
        for host in tiny_topology.external_hosts():
            assert tiny_topology.ip_of(host).startswith("192.168.200.")

    def test_switches_not_addressable(self, tiny_topology):
        with pytest.raises(ValueError):
            tiny_topology.ip_of(tiny_topology.tor_of_rack(0))

    def test_describe_mentions_counts(self, tiny_topology):
        text = tiny_topology.describe()
        assert str(tiny_topology.num_servers) in text
        assert str(tiny_topology.num_racks) in text
