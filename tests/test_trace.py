"""The on-disk trace store: writer, reader, recording, analysis, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.cluster.topology import ClusterSpec
from repro.config import SimulationConfig, WorkloadConfig
from repro.core.flows import reconstruct_flows
from repro.core.traffic_matrix import tm_series_from_events
from repro.instrumentation.events import DIRECTION_SEND, SocketEventLog
from repro.simulation.simulator import Simulator
from repro.telemetry import Telemetry
from repro.trace import (
    TraceReader,
    TraceWriter,
    analyze_trace,
    as_event_log,
    check_against_inmemory,
    find_traces,
    record_trace,
)
from repro.trace.format import read_manifest

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")


def micro_config(seed: int = 3) -> SimulationConfig:
    return SimulationConfig(
        cluster=ClusterSpec(racks=3, servers_per_rack=4, racks_per_vlan=2,
                            external_hosts=1),
        workload=WorkloadConfig(job_arrival_rate=0.3, day_load_factors=(1.0,),
                                day_length=40.0),
        duration=40.0,
        seed=seed,
    )


def synthetic_log(num_events=120, seed=17):
    rng = np.random.default_rng(seed)
    log = SocketEventLog()
    for t in np.sort(rng.uniform(0.0, 30.0, size=num_events)):
        log.append(
            timestamp=float(t), server=int(rng.integers(0, 8)),
            direction=DIRECTION_SEND, src=int(rng.integers(0, 8)),
            src_port=8400, dst=int(rng.integers(0, 8)), dst_port=50000,
            protocol=6, num_bytes=float(rng.integers(1, 5000)),
            job_id=1, phase_index=0,
        )
    log.finalize()
    return log


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    """One recorded micro trace shared by the read-only tests."""
    path = tmp_path_factory.mktemp("traces") / "micro.reprotrace"
    record = record_trace(micro_config(), path, chunk_size=500)
    return path, record


class TestWriterReader:
    def test_round_trip_is_exact(self, tmp_path):
        log = synthetic_log()
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=50) as writer:
            writer.append_log(log)
        reader = TraceReader(path)
        back = reader.read_all()
        for name in log.to_columns():
            assert np.array_equal(back.column(name), log.column(name)), name

    def test_chunking_respects_chunk_size(self, tmp_path):
        log = synthetic_log(num_events=120)
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=50) as writer:
            writer.append_log(log)
        reader = TraceReader(path)
        assert reader.num_chunks == 3
        assert [entry["rows"] for entry in reader.chunks] == [50, 50, 20]
        assert reader.total_rows == 120

    def test_chunk_time_ranges_cover_span(self, tmp_path):
        log = synthetic_log()
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=40) as writer:
            writer.append_log(log)
        reader = TraceReader(path)
        first, last = reader.time_span()
        assert first == log.column("timestamp")[0]
        assert last == log.column("timestamp")[-1]
        mins = [entry["t_min"] for entry in reader.chunks]
        assert mins == sorted(mins)

    def test_content_hashes_deterministic(self, tmp_path):
        log = synthetic_log()
        hashes = []
        for name in ("a", "b"):
            path = tmp_path / f"{name}.reprotrace"
            with TraceWriter(path, chunk_size=30) as writer:
                writer.append_log(log)
            hashes.append([e["sha256"] for e in TraceReader(path).chunks])
        assert hashes[0] == hashes[1]

    def test_verify_detects_corruption(self, tmp_path):
        log = synthetic_log()
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=60) as writer:
            writer.append_log(log)
        reader = TraceReader(path)
        assert reader.verify() == []
        victim = path / reader.chunks[0]["file"]
        columns = dict(np.load(victim))
        columns["num_bytes"] = columns["num_bytes"] + 1.0
        np.savez_compressed(victim, **columns)
        assert TraceReader(path).verify() == [reader.chunks[0]["file"]]

    def test_empty_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.reprotrace"
        with TraceWriter(path, chunk_size=10):
            pass
        reader = TraceReader(path)
        assert reader.num_chunks == 0
        assert reader.total_rows == 0
        log = reader.read_all()
        assert len(log) == 0
        # Empty logs flow through the analyses without special-casing.
        assert len(reconstruct_flows(log)) == 0
        from repro.cluster.topology import ClusterTopology
        topo = ClusterTopology(ClusterSpec(racks=2, servers_per_rack=2))
        series = tm_series_from_events(log, topo, 10.0, 30.0)
        assert series.matrices.sum() == 0.0

    def test_overwrite_required_for_existing(self, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=10):
            pass
        with pytest.raises(FileExistsError):
            TraceWriter(path, chunk_size=10)
        with TraceWriter(path, chunk_size=10, overwrite=True):
            pass

    def test_manifest_schema_fields(self, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=10, meta={"seed": 1}) as writer:
            writer.append_log(synthetic_log(num_events=15))
        manifest = read_manifest(path)
        assert manifest["format"] == "reprotrace"
        assert manifest["schema_version"] == 1
        assert manifest["meta"]["seed"] == 1
        names = {name for name, _ in manifest["columns"]}
        assert "timestamp" in names and "num_bytes" in names

    def test_bad_schema_version_rejected(self, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=10):
            pass
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["schema_version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            TraceReader(path)


class TestAsEventLog:
    def test_accepts_log_reader_and_path(self, tmp_path):
        log = synthetic_log()
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=50) as writer:
            writer.append_log(log)
        assert as_event_log(log) is log
        for source in (TraceReader(path), path, str(path)):
            back = as_event_log(source)
            assert np.array_equal(back.column("timestamp"), log.column("timestamp"))

    def test_core_analyses_accept_trace_paths(self, tmp_path):
        log = synthetic_log()
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=50) as writer:
            writer.append_log(log)
        direct = reconstruct_flows(log)
        via_path = reconstruct_flows(path)
        assert np.array_equal(direct.num_bytes, via_path.num_bytes)


class TestRecording:
    def test_streams_all_events(self, recorded):
        path, record = recorded
        reader = TraceReader(path)
        assert reader.total_rows > 0
        # Every event went to disk; the in-memory log stayed empty.
        assert len(record.result.socket_log) == 0
        assert record.result.stats["socket_events_streamed"] == reader.total_rows
        assert record.result.stats["socket_events"] == reader.total_rows

    def test_streamed_run_matches_unstreamed(self, recorded):
        path, record = recorded
        plain = Simulator(micro_config()).run()
        reader = TraceReader(path)
        back = reader.read_all()
        assert len(back) == len(plain.socket_log)
        for name in ("timestamp", "src", "dst", "num_bytes"):
            assert np.array_equal(back.column(name), plain.socket_log.column(name)), name
        # Streaming must not perturb the simulation itself.
        assert np.array_equal(
            record.result.link_loads.byte_matrix(), plain.link_loads.byte_matrix()
        )

    def test_recording_is_deterministic(self, recorded, tmp_path):
        path, _ = recorded
        again = tmp_path / "again.reprotrace"
        record_trace(micro_config(), again, chunk_size=500)
        first = [e["sha256"] for e in TraceReader(path).chunks]
        second = [e["sha256"] for e in TraceReader(again).chunks]
        assert first == second

    def test_recorded_trace_passes_invariants(self, recorded, assert_invariants):
        path, record = recorded
        report = assert_invariants(str(path))
        assert report.checkers_skipped == 0
        assert_invariants(record.result)

    def test_meta_provenance(self, recorded):
        path, _ = recorded
        meta = TraceReader(path).meta
        assert meta["seed"] == 3
        assert meta["duration"] == 40.0
        assert meta["cluster_spec"]["racks"] == 3
        assert len(meta["config_fingerprint"]) == 64


class TestAnalyze:
    def test_sequential_matches_inmemory(self, recorded):
        path, _ = recorded
        checks = check_against_inmemory(path)
        assert checks == {
            "tm_equal": True, "flows_equal": True,
            "congestion_equal": True, "all_equal": True,
        }

    def test_parallel_matches_inmemory(self, recorded):
        path, _ = recorded
        checks = check_against_inmemory(path, jobs=2)
        assert checks["all_equal"], checks

    def test_summary_has_headline_numbers(self, recorded):
        path, _ = recorded
        analysis = analyze_trace(path)
        summary = analysis.summary()
        assert summary["num_flows"] == len(analysis.flows)
        assert summary["flow_bytes"] > 0
        assert "congestion_episodes" in summary
        assert analysis.flow_stats["flows"] == len(analysis.flows)

    def test_telemetry_counters(self, recorded):
        path, _ = recorded
        tele = Telemetry()
        analyze_trace(path, telemetry=tele)
        metrics = tele.metrics.snapshot()
        reader = TraceReader(path)
        assert metrics["trace.chunks_read"]["value"] == reader.num_chunks
        assert metrics["trace.rows_read"]["value"] == reader.total_rows


class TestDatasetFromTrace:
    def test_builds_experiment_dataset(self, recorded):
        from repro.experiments import dataset_from_trace

        path, _ = recorded
        dataset = dataset_from_trace(path)
        assert len(dataset.flows) > 0
        assert dataset.tm10.num_windows == 4
        assert dataset.utilization.shape[0] > 0
        assert dataset.extras["trace_path"] == str(path)
        assert dataset.observed_utilization.shape[0] == dataset.observed_links.size


class TestFindTraces:
    def test_finds_direct_children(self, tmp_path):
        for name in ("a", "b"):
            with TraceWriter(tmp_path / f"{name}.reprotrace", chunk_size=10):
                pass
        (tmp_path / "not_a_trace").mkdir()
        found = find_traces(tmp_path)
        assert [p.name for p in found] == ["a.reprotrace", "b.reprotrace"]

    def test_accepts_trace_dir_itself(self, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=10):
            pass
        assert find_traces(path) == [path]


class TestTraceCli:
    def test_record_info_analyze(self, recorded, capsys, tmp_path):
        out_path = tmp_path / "cli.reprotrace"
        code = main([
            "trace", "record", "--racks", "2", "--servers-per-rack", "4",
            "--duration", "20", "--seed", "5", "--chunk-size", "400",
            "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recorded" in out and "chunk(s)" in out

        code = main(["trace", "info", str(out_path), "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "reprotrace v1" in out
        assert "verified" in out

        code = main(["trace", "ls", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "cli.reprotrace" in out
        assert "KiB" in out or "MiB" in out

        code = main(["trace", "analyze", str(out_path), "--check"])
        out = capsys.readouterr().out
        assert code == 0
        assert "check all_equal: OK" in out

    def test_record_refuses_to_clobber(self, capsys, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=10):
            pass
        code = main([
            "trace", "record", "--racks", "2", "--servers-per-rack", "4",
            "--duration", "5", "--out", str(path),
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "--overwrite" in captured.err

    def test_info_flags_corruption(self, capsys, tmp_path):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=40) as writer:
            writer.append_log(synthetic_log())
        victim = path / TraceReader(path).chunks[0]["file"]
        columns = dict(np.load(victim))
        columns["timestamp"] = columns["timestamp"] + 1.0
        np.savez_compressed(victim, **columns)
        code = main(["trace", "info", str(path), "--verify"])
        captured = capsys.readouterr()
        assert code == 1
        assert "CORRUPT" in captured.err


class TestQueueDepthSidecar:
    """The queued transports' queue-occupancy series rides the linkloads
    sidecar; fluid recordings are untouched (no array, hash unchanged)."""

    def _write(self, tmp_path, queue_depth):
        path = tmp_path / "t.reprotrace"
        with TraceWriter(path, chunk_size=50,
                         meta={"transport_impl": "dctcp"}) as writer:
            writer.append_log(synthetic_log(num_events=20))
            writer.set_linkloads(
                np.ones((3, 4)), np.ones(3), 1.0,
                np.array([0, 1], dtype=np.int64),
                queue_depth=queue_depth,
            )
        return path

    def test_roundtrip_and_hash(self, tmp_path):
        depth = np.arange(12.0).reshape(3, 4)
        path = self._write(tmp_path, depth)
        reader = TraceReader(path)
        assert reader.manifest["linkloads"]["has_queue_depth"] is True
        assert reader.meta["transport_impl"] == "dctcp"
        assert reader.verify() == []
        loads = reader.linkloads()
        assert loads.has_queue_depth
        assert np.array_equal(loads.queue_depth_matrix(), depth)

    def test_fluid_recordings_have_no_depth(self, tmp_path):
        path = self._write(tmp_path, None)
        reader = TraceReader(path)
        assert reader.manifest["linkloads"]["has_queue_depth"] is False
        assert reader.verify() == []
        loads = reader.linkloads()
        assert not loads.has_queue_depth
        assert loads.queue_depth_matrix() is None

    def test_depth_corruption_detected(self, tmp_path):
        from repro.trace.format import LINKLOADS_NAME

        path = self._write(tmp_path, np.arange(12.0).reshape(3, 4))
        sidecar = path / LINKLOADS_NAME
        arrays = dict(np.load(sidecar))
        arrays["queue_depth"] = arrays["queue_depth"] + 1.0
        np.savez_compressed(sidecar, **arrays)
        assert TraceReader(path).verify() == [LINKLOADS_NAME]
