"""Traffic matrix computation at multiple time-scales."""

import numpy as np
import pytest

from repro.core.traffic_matrix import (
    log_matrix,
    server_tm_to_tor_tm,
    tm_series_from_events,
    tm_series_from_transfers,
)
from repro.instrumentation.events import DIRECTION_RECV, DIRECTION_SEND, SocketEventLog
from repro.simulation.transport import Transfer, TransferMeta


def event_log(events):
    log = SocketEventLog()
    for event in events:
        defaults = dict(
            server=0, direction=DIRECTION_SEND, src=0, src_port=8400,
            dst=1, dst_port=50000, protocol=6, num_bytes=100.0,
            job_id=-1, phase_index=-1,
        )
        defaults.update(event)
        log.append(**defaults)
    log.finalize()
    return log


def transfer(src, dst, size, start, end):
    return Transfer(transfer_id=0, src=src, dst=dst, size=size,
                    start_time=start, end_time=end, meta=TransferMeta(kind="fetch"))


class TestEventSeries:
    def test_bytes_land_in_window(self, tiny_topology):
        log = event_log([{"timestamp": 12.0, "src": 0, "dst": 1}])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=30.0)
        assert series.num_windows == 3
        assert series.matrices[1, 0, 1] == 100.0
        assert series.total().sum() == 100.0

    def test_recv_duplicates_excluded(self, tiny_topology):
        log = event_log([
            {"timestamp": 1.0, "direction": DIRECTION_SEND},
            {"timestamp": 1.0, "direction": DIRECTION_RECV, "server": 1},
        ])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        assert series.total().sum() == 100.0

    def test_external_sender_counted_via_recv(self, tiny_topology):
        external = tiny_topology.num_nodes - 1
        log = event_log([
            {"timestamp": 1.0, "direction": DIRECTION_RECV, "src": external,
             "dst": 2, "server": 2},
        ])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        index = list(series.endpoint_ids).index(external)
        assert series.total()[index, 2] == 100.0

    def test_endpoint_ids_cover_servers_and_external(self, tiny_topology):
        log = event_log([])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        assert series.num_endpoints == (
            tiny_topology.num_servers + tiny_topology.spec.external_hosts
        )

    def test_invalid_window_rejected(self, tiny_topology):
        with pytest.raises(ValueError):
            tm_series_from_events(event_log([]), tiny_topology, window=0, duration=10)

    def test_empty_log_yields_zero_series(self, tiny_topology):
        # Regression: an empty (or fully idle) trace must produce the
        # full zero-filled window series, not fail or shrink.
        series = tm_series_from_events(
            event_log([]), tiny_topology, window=10.0, duration=35.0
        )
        assert series.num_windows == 4
        assert series.matrices.shape[1] == series.num_endpoints
        assert series.matrices.sum() == 0.0


class TestTransferSeries:
    def test_bytes_spread_over_lifetime(self, tiny_topology):
        series = tm_series_from_transfers(
            [transfer(0, 1, 100.0, start=5.0, end=15.0)],
            tiny_topology, window=10.0, duration=20.0,
        )
        assert series.matrices[0, 0, 1] == pytest.approx(50.0)
        assert series.matrices[1, 0, 1] == pytest.approx(50.0)

    def test_instant_transfer(self, tiny_topology):
        series = tm_series_from_transfers(
            [transfer(0, 1, 100.0, start=5.0, end=5.0)],
            tiny_topology, window=10.0, duration=20.0,
        )
        assert series.matrices[0, 0, 1] == 100.0

    def test_truncated_at_duration(self, tiny_topology):
        series = tm_series_from_transfers(
            [transfer(0, 1, 100.0, start=15.0, end=25.0)],
            tiny_topology, window=10.0, duration=20.0,
        )
        # only the first half of the transfer falls inside the horizon
        assert series.total()[0, 1] == pytest.approx(50.0)


class TestAggregation:
    def test_aggregate_sums_windows(self, tiny_topology):
        log = event_log([
            {"timestamp": 1.0}, {"timestamp": 11.0}, {"timestamp": 21.0},
        ])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=40.0)
        coarse = series.aggregate(2)
        assert coarse.num_windows == 2
        assert coarse.window == 20.0
        assert coarse.matrices[0, 0, 1] == 200.0
        assert coarse.total().sum() == series.total().sum() - 0.0

    def test_aggregate_factor_one_identity(self, tiny_topology):
        log = event_log([{"timestamp": 1.0}])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        assert series.aggregate(1) is series

    def test_aggregate_too_coarse_rejected(self, tiny_topology):
        log = event_log([{"timestamp": 1.0}])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        with pytest.raises(ValueError):
            series.aggregate(5)

    def test_totals_per_window(self, tiny_topology):
        log = event_log([{"timestamp": 1.0}, {"timestamp": 11.0}])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=20.0)
        assert series.totals_per_window().tolist() == [100.0, 100.0]


class TestTorCollapse:
    def test_intra_rack_excluded(self, tiny_topology):
        log = event_log([{"timestamp": 1.0, "src": 0, "dst": 1}])  # same rack
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        tor = server_tm_to_tor_tm(series.total(), tiny_topology, series.endpoint_ids)
        assert tor.sum() == 0.0

    def test_cross_rack_counted(self, tiny_topology):
        other_rack = tiny_topology.spec.servers_per_rack
        log = event_log([{"timestamp": 1.0, "src": 0, "dst": other_rack}])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        tor = server_tm_to_tor_tm(series.total(), tiny_topology, series.endpoint_ids)
        assert tor[0, 1] == 100.0
        assert np.all(np.diag(tor) == 0.0)

    def test_external_traffic_dropped(self, tiny_topology):
        external = tiny_topology.num_nodes - 1
        log = event_log([
            {"timestamp": 1.0, "direction": DIRECTION_RECV, "src": external,
             "dst": 0, "server": 0},
        ])
        series = tm_series_from_events(log, tiny_topology, window=10.0, duration=10.0)
        tor = server_tm_to_tor_tm(series.total(), tiny_topology, series.endpoint_ids)
        assert tor.sum() == 0.0


class TestLogMatrix:
    def test_zeros_become_nan(self):
        tm = np.array([[0.0, np.e], [1.0, 0.0]])
        logged = log_matrix(tm)
        assert np.isnan(logged[0, 0])
        assert logged[0, 1] == pytest.approx(1.0)
        assert logged[1, 0] == pytest.approx(0.0)
