"""Fluid transport: max-min fairness, integration, completion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.simulation.linkloads import LinkLoadTracker
from repro.simulation.transport import FluidTransport, TransferMeta
from repro.util.units import GBPS


@pytest.fixture()
def topo():
    return ClusterTopology(
        ClusterSpec(racks=2, servers_per_rack=4, racks_per_vlan=2, external_hosts=0,
                    tor_uplink_capacity=2 * GBPS)
    )


@pytest.fixture()
def router(topo):
    return Router(topo)


def make_transport(topo, sinks=None, fairness="maxmin"):
    return FluidTransport(topo, sinks=sinks, fairness=fairness)


META = TransferMeta(kind="fetch")


class TestSingleFlow:
    def test_nic_limited_rate(self, topo, router):
        transport = make_transport(topo)
        transport.add_flow(0, 1, 125e6, router.path_links(0, 1), META)
        transport.recompute_rates()
        assert transport.next_completion_time() == pytest.approx(1.0)

    def test_completion_produces_transfer(self, topo, router):
        transport = make_transport(topo)
        transport.add_flow(0, 1, 125e6, router.path_links(0, 1), META,
                           on_complete=None)
        transport.recompute_rates()
        transport.advance_to(1.0 + 1e-9)
        completed = transport.pop_completed()
        assert len(completed) == 1
        transfer, callback = completed[0]
        assert callback is None
        assert transfer.size == 125e6
        assert transfer.src == 0 and transfer.dst == 1
        assert transfer.end_time == pytest.approx(1.0, rel=1e-6)

    def test_invalid_flow_rejected(self, topo, router):
        transport = make_transport(topo)
        with pytest.raises(ValueError):
            transport.add_flow(0, 1, 0.0, router.path_links(0, 1), META)
        with pytest.raises(ValueError):
            transport.add_flow(0, 1, 1.0, (), META)


class TestFairness:
    def test_two_flows_share_shared_nic(self, topo, router):
        transport = make_transport(topo)
        transport.add_flow(0, 2, 1e9, router.path_links(0, 2), META)
        transport.add_flow(0, 3, 1e9, router.path_links(0, 3), META)
        transport.recompute_rates()
        rates = transport._rates[transport._active]
        assert np.allclose(rates, 62.5e6, rtol=1e-6)

    def test_disjoint_flows_full_rate(self, topo, router):
        transport = make_transport(topo)
        transport.add_flow(0, 1, 1e9, router.path_links(0, 1), META)
        transport.add_flow(2, 3, 1e9, router.path_links(2, 3), META)
        transport.recompute_rates()
        rates = transport._rates[transport._active]
        assert np.allclose(rates, 125e6, rtol=1e-6)

    def test_maxmin_redistributes_leftover(self, topo, router):
        """Three flows into server 1 plus one 0->2 flow: the 0->2 flow
        should pick up the share the bottlenecked flows cannot use."""
        transport = make_transport(topo)
        for src in (2, 3, 4):
            transport.add_flow(src, 1, 1e9, router.path_links(src, 1), META)
        slot = transport.add_flow(0, 5, 1e9, router.path_links(0, 5), META)
        transport.recompute_rates()
        # flows into server 1 share its NIC: ~41.7 MB/s each; flow 0->5
        # is limited only by its own NICs: full 125 MB/s.
        assert transport._rates[slot] == pytest.approx(125e6, rel=0.05)

    def test_no_link_oversubscribed(self, topo, router):
        rng = np.random.default_rng(5)
        transport = make_transport(topo)
        endpoints = topo.endpoints()
        for _ in range(40):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            transport.add_flow(int(src), int(dst), 1e9,
                               router.path_links(int(src), int(dst)), META)
        transport.recompute_rates()
        utilization = transport.utilization_snapshot()
        assert utilization.max() <= 1.0 + 0.03  # level-grouping tolerance

    def test_every_flow_positive_rate(self, topo, router):
        rng = np.random.default_rng(7)
        transport = make_transport(topo)
        endpoints = topo.endpoints()
        for _ in range(60):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            transport.add_flow(int(src), int(dst), 1e9,
                               router.path_links(int(src), int(dst)), META)
        transport.recompute_rates()
        assert (transport._rates[transport._active] > 0).all()

    def test_bottleneck_mode_never_exceeds_maxmin_total(self, topo, router):
        rng = np.random.default_rng(9)
        flows = []
        endpoints = topo.endpoints()
        for _ in range(30):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            flows.append((int(src), int(dst)))
        totals = {}
        for mode in ("maxmin", "bottleneck"):
            transport = make_transport(topo, fairness=mode)
            for src, dst in flows:
                transport.add_flow(src, dst, 1e9, router.path_links(src, dst), META)
            transport.recompute_rates()
            totals[mode] = transport._rates[transport._active].sum()
        assert totals["bottleneck"] <= totals["maxmin"] * 1.03

    def test_unknown_fairness_rejected(self, topo):
        with pytest.raises(ValueError):
            FluidTransport(topo, fairness="magic")


class TestIntegration:
    def test_bytes_flow_into_sink(self, topo, router):
        tracker = LinkLoadTracker(topo)
        transport = make_transport(topo, sinks=[tracker])
        transport.add_flow(0, 1, 125e6, router.path_links(0, 1), META)
        transport.recompute_rates()
        transport.advance_to(1.0)
        for link_id in router.path_links(0, 1):
            assert tracker.link_totals()[link_id] == pytest.approx(125e6, rel=1e-6)

    def test_advance_backwards_rejected(self, topo):
        transport = make_transport(topo)
        transport.advance_to(5.0)
        with pytest.raises(ValueError):
            transport.advance_to(4.0)

    def test_remaining_decreases(self, topo, router):
        transport = make_transport(topo)
        slot = transport.add_flow(0, 1, 125e6, router.path_links(0, 1), META)
        transport.recompute_rates()
        transport.advance_to(0.5)
        assert transport._remaining[slot] == pytest.approx(62.5e6, rel=1e-6)

    def test_slot_reuse_after_completion(self, topo, router):
        transport = make_transport(topo)
        slot = transport.add_flow(0, 1, 1e3, router.path_links(0, 1), META)
        transport.recompute_rates()
        transport.advance_to(1.0)
        transport.pop_completed()
        slot2 = transport.add_flow(0, 1, 1e3, router.path_links(0, 1), META)
        assert slot2 == slot

    def test_growth_beyond_initial_capacity(self, topo, router):
        transport = FluidTransport(topo, initial_capacity=4)
        for i in range(10):
            transport.add_flow(0, 1, 1e9, router.path_links(0, 1), META)
        assert transport.active_count == 10

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=25, deadline=None)
    def test_byte_conservation(self, num_flows, seed):
        """Whatever the flow mix, completed bytes equal injected bytes."""
        topo = ClusterTopology(
            ClusterSpec(racks=2, servers_per_rack=3, racks_per_vlan=2,
                        external_hosts=0)
        )
        router = Router(topo)
        tracker = LinkLoadTracker(topo)
        transport = FluidTransport(topo, sinks=[tracker])
        rng = np.random.default_rng(seed)
        injected = 0.0
        for _ in range(num_flows):
            src, dst = rng.choice(topo.num_servers, size=2, replace=False)
            size = float(rng.uniform(1e4, 1e8))
            injected += size
            transport.add_flow(int(src), int(dst), size,
                               router.path_links(int(src), int(dst)), META)
        transport.recompute_rates()
        # run to completion
        for _ in range(10 * num_flows):
            next_time = transport.next_completion_time()
            if next_time is None:
                break
            transport.advance_to(next_time)
            transport.pop_completed()
            transport.recompute_rates()
        completed_bytes = injected - transport._remaining[transport._active].sum()
        assert completed_bytes == pytest.approx(injected, rel=1e-6)
        assert transport.active_count == 0
        # The link-load sink saw the same bytes the flows carried: every
        # flow crosses exactly one server->ToR first hop, so summing the
        # server-egress links recovers the injected volume.
        egress_links = [
            topo.link_between(s, topo.tor_of_rack(topo.rack_of(s))).link_id
            for s in range(topo.num_servers)
        ]
        assert tracker.link_totals()[egress_links].sum() == pytest.approx(
            injected, rel=1e-6
        )