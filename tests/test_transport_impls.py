"""Differential test: the four transport impls, end to end.

Runs the seeded fuzz configs from :mod:`test_differential` through full
campaigns under every ``transport_impl`` setting.  ``vectorized`` and
``csr`` must be *identical* to ``reference`` — socket-event logs column
for column, reconstructed flow tables, link-load matrices, and
congestion episodes.  ``incremental`` is tolerance-based by design
(documented ``INCREMENTAL_RTOL``): those campaigns are checked for
matching workload structure plus the inline
``transport.incremental_equivalence`` validator on every batch, which
bounds rate drift against a from-scratch reference solve throughout the
run.  Unlike the three-path trace fuzz (which is ``slow``-marked),
these configs are small enough to run in the tier-1 suite, so any float
divergence fails fast on every push.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.congestion import find_episodes
from repro.core.flows import reconstruct_flows
from repro.simulation.simulator import simulate
from repro.trace.analyze import _flow_tables_equal

from test_differential import _random_configs


@pytest.mark.parametrize("impl", ["vectorized", "csr"])
@pytest.mark.parametrize("index,config", list(enumerate(_random_configs(3))))
def test_exact_impls_match_reference(index, config, impl):
    result_vec = simulate(
        dataclasses.replace(config, transport_impl=impl)
    )
    result_ref = simulate(
        dataclasses.replace(config, transport_impl="reference")
    )

    # Socket-event logs: identical column for column (bitwise).
    columns_vec = result_vec.socket_log.to_columns()
    columns_ref = result_ref.socket_log.to_columns()
    assert columns_vec.keys() == columns_ref.keys()
    for name in columns_vec:
        assert np.array_equal(columns_vec[name], columns_ref[name]), (
            f"config {index}: column {name!r} diverged"
        )

    # Reconstructed flow tables.
    assert _flow_tables_equal(
        reconstruct_flows(result_vec.socket_log),
        reconstruct_flows(result_ref.socket_log),
    )

    # Link loads: every one-second byte bin on every link.
    assert np.array_equal(
        result_vec.link_loads.byte_matrix(), result_ref.link_loads.byte_matrix()
    )

    # Congestion episodes (paper §4.2) — derived, but cheap to pin.
    hot_vec = (
        result_vec.link_loads.utilization_matrix()
        >= config.congestion_threshold
    )
    hot_ref = (
        result_ref.link_loads.utilization_matrix()
        >= config.congestion_threshold
    )
    assert find_episodes(hot_vec) == find_episodes(hot_ref)

    # And the run-level stats counters.
    assert result_vec.stats == result_ref.stats


@pytest.mark.parametrize("index,config", list(enumerate(_random_configs(2))))
def test_incremental_tracks_reference_within_tolerance(index, config):
    """Incremental campaigns finish the same workload with continuously
    validated rates.

    ``validate_every_n_batches=1`` runs the
    ``transport.incremental_equivalence`` checker after *every* engine
    batch: any live rate further than ``INCREMENTAL_RTOL`` from a
    from-scratch reference solve, or any oversubscribed link, aborts the
    run.  Workload-level outputs (jobs, transfer population, byte
    volume) must agree with the reference campaign — completion
    *timestamps* may legitimately drift within the rate tolerance.
    """
    result_inc = simulate(
        dataclasses.replace(
            config, transport_impl="incremental", validate_every_n_batches=1
        )
    )
    result_ref = simulate(
        dataclasses.replace(config, transport_impl="reference")
    )

    assert result_inc.stats["jobs_submitted"] == result_ref.stats["jobs_submitted"]
    assert result_inc.stats["jobs_finished"] == result_ref.stats["jobs_finished"]
    assert (
        result_inc.stats["transfers_started"]
        == result_ref.stats["transfers_started"]
    )

    # Completed-transfer population: same flows (src, dst, size), order-
    # and timing-insensitive.
    def population(result):
        return sorted(
            (t.src, t.dst, t.size, t.meta.kind) for t in result.transfers
        )

    assert population(result_inc) == population(result_ref)

    # Byte conservation at the link level: total bytes moved agree to the
    # documented tolerance (drifted completions shift bins, not volume).
    bytes_inc = result_inc.link_loads.byte_matrix().sum()
    bytes_ref = result_ref.link_loads.byte_matrix().sum()
    assert bytes_inc == pytest.approx(bytes_ref, rel=0.05)
