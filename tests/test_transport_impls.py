"""Differential test: vectorized vs reference transport, end to end.

Runs the seeded fuzz configs from :mod:`test_differential` through full
campaigns under both ``transport_impl`` settings and asserts the outputs
are *identical* — socket-event logs column for column, reconstructed
flow tables, link-load matrices, and congestion episodes.  Unlike the
three-path trace fuzz (which is ``slow``-marked), these configs are
small enough to run in the tier-1 suite, so any float divergence in the
vectorized allocator fails fast on every push.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.congestion import find_episodes
from repro.core.flows import reconstruct_flows
from repro.simulation.simulator import simulate
from repro.trace.analyze import _flow_tables_equal

from test_differential import _random_configs


@pytest.mark.parametrize("index,config", list(enumerate(_random_configs(3))))
def test_vectorized_matches_reference(index, config):
    result_vec = simulate(
        dataclasses.replace(config, transport_impl="vectorized")
    )
    result_ref = simulate(
        dataclasses.replace(config, transport_impl="reference")
    )

    # Socket-event logs: identical column for column (bitwise).
    columns_vec = result_vec.socket_log.to_columns()
    columns_ref = result_ref.socket_log.to_columns()
    assert columns_vec.keys() == columns_ref.keys()
    for name in columns_vec:
        assert np.array_equal(columns_vec[name], columns_ref[name]), (
            f"config {index}: column {name!r} diverged"
        )

    # Reconstructed flow tables.
    assert _flow_tables_equal(
        reconstruct_flows(result_vec.socket_log),
        reconstruct_flows(result_ref.socket_log),
    )

    # Link loads: every one-second byte bin on every link.
    assert np.array_equal(
        result_vec.link_loads.byte_matrix(), result_ref.link_loads.byte_matrix()
    )

    # Congestion episodes (paper §4.2) — derived, but cheap to pin.
    hot_vec = (
        result_vec.link_loads.utilization_matrix()
        >= config.congestion_threshold
    )
    hot_ref = (
        result_ref.link_loads.utilization_matrix()
        >= config.congestion_threshold
    )
    assert find_episodes(hot_vec) == find_episodes(hot_ref)

    # And the run-level stats counters.
    assert result_vec.stats == result_ref.stats
