"""Units and formatting helpers."""

import pytest

from repro.util import units


class TestConstants:
    def test_gbps_is_bytes_per_second(self):
        assert units.GBPS == pytest.approx(125e6)

    def test_mb_decimal(self):
        assert units.MB == 1_000_000.0

    def test_day_seconds(self):
        assert units.DAY == 86400.0


class TestConversions:
    def test_bytes_to_bits(self):
        assert units.bytes_to_bits(10) == 80

    def test_bits_to_bytes(self):
        assert units.bits_to_bytes(80) == 10

    def test_roundtrip(self):
        assert units.bits_to_bytes(units.bytes_to_bits(12345.5)) == 12345.5


class TestFormatBytes:
    def test_plain_bytes(self):
        assert units.format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert units.format_bytes(1500) == "1.50 KB"

    def test_gigabytes(self):
        assert units.format_bytes(3.2e9) == "3.20 GB"

    def test_terabytes(self):
        assert units.format_bytes(2e12) == "2.00 TB"

    def test_negative_value_keeps_sign(self):
        assert units.format_bytes(-2e6) == "-2.00 MB"


class TestFormatBytesBinary:
    def test_plain_bytes(self):
        assert units.format_bytes_binary(512) == "512 B"

    def test_kibibytes(self):
        assert units.format_bytes_binary(1536) == "1.50 KiB"

    def test_mebibytes(self):
        assert units.format_bytes_binary(5 * 1024**2) == "5.00 MiB"

    def test_gibibytes(self):
        assert units.format_bytes_binary(3 * 1024**3) == "3.00 GiB"

    def test_tebibytes(self):
        assert units.format_bytes_binary(2 * 1024**4) == "2.00 TiB"

    def test_just_below_boundary_stays_in_lower_unit(self):
        assert units.format_bytes_binary(1023) == "1023 B"

    def test_binary_not_decimal(self):
        # 1000 bytes is still under one KiB — the whole point of the
        # binary helper for on-disk sizes.
        assert units.format_bytes_binary(1000) == "1000 B"


class TestFormatRate:
    def test_gigabit(self):
        assert units.format_rate(125e6) == "1.00 Gbps"

    def test_megabit(self):
        assert units.format_rate(125e3) == "1.00 Mbps"

    def test_sub_kilobit(self):
        assert units.format_rate(10) == "80 bps"


class TestFormatDuration:
    def test_milliseconds(self):
        assert units.format_duration(0.002) == "2.0 ms"

    def test_microseconds(self):
        assert units.format_duration(5e-6) == "5.0 us"

    def test_seconds(self):
        assert units.format_duration(2.5) == "2.50 s"

    def test_minutes(self):
        assert units.format_duration(90) == "1.50 min"

    def test_hours(self):
        assert units.format_duration(3700) == "1.03 h"
