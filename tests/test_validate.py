"""The invariant validation subsystem: registry, context, checkers, CLI.

Positive paths (fresh artefacts report zero violations) and negative
paths (hand-broken artefacts are caught by the *named* checker the issue
demands) are both covered; corruption of on-disk traces lives in
``test_corruption.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.config import SimulationConfig
from repro.instrumentation.events import (
    DIRECTION_RECV,
    DIRECTION_SEND,
    SocketEventLog,
)
from repro.simulation.simulator import Simulator, simulate
from repro.telemetry import Telemetry
from repro.validate import (
    ValidationContext,
    ValidationError,
    ValidationReport,
    checker,
    checker_names,
    checker_specs,
    get_checker,
    run_checkers,
    run_inline_checks,
    validate,
)

from conftest import micro_trace_config


@pytest.fixture(scope="module")
def micro_result():
    return simulate(micro_trace_config())


class TestRegistry:
    def test_builtins_registered(self):
        names = checker_names()
        for expected in (
            "events.sane", "events.monotone", "bytes.conservation",
            "bytes.link_conservation", "linkloads.sane",
            "bytes.linkloads_cover_events", "analysis.streaming_equal",
            "trace.manifest", "trace.chunk_hashes", "trace.sidecar",
            "trace.roundtrip", "congestion.in_bounds",
            "tomography.link_consistency", "inline.engine_time",
            "inline.linkloads", "inline.transport",
            "transport.allocator_equivalence",
            "transport.incremental_equivalence",
        ):
            assert expected in names

    def test_specs_carry_descriptions_and_tags(self):
        for spec in checker_specs():
            assert spec.description, spec.name
            assert spec.tags, spec.name

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="events.sane"):
            get_checker("no.such.checker")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            @checker("events.sane")
            def clash(ctx):  # pragma: no cover
                return []

    def test_tag_selection(self):
        cheap = checker_names(tag="cheap")
        assert "events.sane" in cheap
        assert "analysis.streaming_equal" not in cheap

    def test_default_selection_excludes_inline(self, micro_result):
        report = validate(micro_result)
        run = {r.name for r in report.results}
        assert not any(name.startswith("inline.") for name in run)

    def test_missing_requirements_are_recorded_as_skips(self, micro_result):
        report = validate(micro_result)
        skipped = report.result_for("trace.chunk_hashes")
        assert skipped.status == "skipped"
        assert "trace" in skipped.detail


class TestFreshArtifactsAreClean:
    def test_simulation_result(self, micro_result, assert_invariants):
        report = assert_invariants(micro_result)
        assert report.checkers_run >= 9
        assert report.result_for("bytes.conservation").status == "ok"

    def test_recorded_trace(self, recorded_trace, assert_invariants):
        report = assert_invariants(recorded_trace)
        # A full trace context satisfies every non-inline checker.
        assert report.checkers_skipped == 0
        assert report.result_for("trace.roundtrip").status == "ok"

    def test_session_dataset(self, dataset, assert_invariants):
        assert_invariants(dataset)

    def test_telemetry_counters(self, micro_result):
        tele = Telemetry()
        report = validate(micro_result, telemetry=tele)
        metrics = tele.metrics.snapshot()
        assert metrics["validate.checkers_run"]["value"] == report.checkers_run
        assert (
            metrics["validate.checkers_skipped"]["value"]
            == report.checkers_skipped
        )
        assert "validate.violations" not in metrics


def _edited_log(log: SocketEventLog, **overrides) -> SocketEventLog:
    """Copy a finalized log with some columns overwritten."""
    columns = {name: column.copy() for name, column in log.to_columns().items()}
    columns.update(overrides)
    return SocketEventLog.from_columns(columns)


class TestBrokenArtifactsAreCaught:
    """Each corruption class is detected by its named checker."""

    def _ctx_with_log(self, result, log) -> ValidationContext:
        ctx = ValidationContext.from_result(result)
        ctx._log = log
        return ctx

    def test_byte_conservation_break(self, micro_result):
        # Reconstruct flows from the pristine log, then inflate one send
        # event — the flow table no longer accounts for the log's bytes.
        log = micro_result.socket_log
        num_bytes = log.column("num_bytes").copy()
        send = int(np.flatnonzero(log.column("direction") == DIRECTION_SEND)[0])
        num_bytes[send] += 1e9
        ctx = ValidationContext.from_result(micro_result)
        from repro.core.flows import reconstruct_flows
        ctx._flows = reconstruct_flows(log)
        ctx._log = _edited_log(log, num_bytes=num_bytes)
        report = run_checkers(ctx, names=["bytes.conservation"])
        assert not report.ok
        violation = report.violations[0]
        assert violation.checker == "bytes.conservation"
        assert "flow bytes" in violation.message

    def test_src_equals_dst(self, micro_result):
        log = micro_result.socket_log
        dst = log.column("dst").copy()
        dst[:5] = log.column("src")[:5]
        ctx = self._ctx_with_log(micro_result, _edited_log(log, dst=dst))
        report = run_checkers(ctx, names=["events.sane"])
        assert not report.ok
        assert any("src == dst" in v.message for v in report.violations)

    def test_negative_bytes(self, micro_result):
        log = micro_result.socket_log
        num_bytes = log.column("num_bytes").copy()
        num_bytes[3] = -10.0
        ctx = self._ctx_with_log(micro_result, _edited_log(log, num_bytes=num_bytes))
        report = run_checkers(ctx, names=["events.sane"])
        assert any("negative or non-finite bytes" in v.message
                   for v in report.violations)

    def test_timestamps_out_of_bounds(self, micro_result):
        log = micro_result.socket_log
        times = log.column("timestamp").copy()
        times[-1] = micro_result.duration + 50.0
        ctx = self._ctx_with_log(micro_result, _edited_log(log, timestamp=times))
        report = run_checkers(ctx, names=["events.sane"])
        assert any("outside run bounds" in v.message for v in report.violations)

    def test_unsorted_timestamps(self, micro_result):
        log = micro_result.socket_log
        edited = _edited_log(log)
        # from_columns re-sorts, so poke the finalized arrays directly —
        # modelling a buggy merge that breaks the watermark ordering.
        edited._arrays["timestamp"][5] = edited._arrays["timestamp"][4] - 1.0
        ctx = self._ctx_with_log(micro_result, edited)
        report = run_checkers(ctx, names=["events.monotone"])
        assert not report.ok

    def test_linkload_over_capacity(self, micro_result):
        from repro.trace.reader import TraceLinkLoads

        loads = micro_result.link_loads
        byte_matrix = loads.byte_matrix().copy()
        busiest = np.unravel_index(np.argmax(byte_matrix), byte_matrix.shape)
        byte_matrix[busiest] *= 1e6
        doctored = TraceLinkLoads(
            byte_counts=byte_matrix,
            capacities=loads.capacities,
            bin_width=loads.bin_width,
            observed_links=np.array(
                [l.link_id for l in micro_result.topology.inter_switch_links()]
            ),
        )
        ctx = ValidationContext.from_result(micro_result)
        ctx._link_loads = doctored
        report = run_checkers(ctx, names=["linkloads.sane"])
        assert any("exceeds capacity" in v.message for v in report.violations)

    def test_violation_render_and_raise(self, micro_result):
        log = micro_result.socket_log
        num_bytes = log.column("num_bytes").copy()
        num_bytes[3] = -10.0
        ctx = self._ctx_with_log(micro_result, _edited_log(log, num_bytes=num_bytes))
        report = run_checkers(ctx, names=["events.sane"])
        assert "[events.sane]" in report.render()
        with pytest.raises(ValidationError) as exc_info:
            report.raise_if_violations()
        assert exc_info.value.violations == report.violations


class TestInlineMode:
    def test_disabled_by_default(self):
        config = micro_trace_config()
        assert config.validate_every_n_batches == 0
        sim = Simulator(config)
        sim.run()
        assert sim.inline_validations == 0

    def test_negative_interval_rejected(self):
        import dataclasses

        with pytest.raises(ValueError, match="validate_every_n_batches"):
            dataclasses.replace(
                micro_trace_config(), validate_every_n_batches=-1
            )

    def test_sampled_runs_and_determinism(self):
        import dataclasses

        base = micro_trace_config()
        plain = Simulator(base).run()
        checked_sim = Simulator(
            dataclasses.replace(base, validate_every_n_batches=25)
        )
        checked = checked_sim.run()
        assert checked_sim.inline_validations > 0
        for name in ("timestamp", "src", "dst", "num_bytes"):
            assert np.array_equal(
                plain.socket_log.column(name), checked.socket_log.column(name)
            )

    def test_run_inline_checks_directly(self):
        sim = Simulator(micro_trace_config())
        report = run_inline_checks(sim)
        assert report.ok
        run = {r.name for r in report.results}
        assert run == {"inline.engine_time", "inline.linkloads",
                       "inline.transport",
                       "transport.allocator_equivalence",
                       "transport.incremental_equivalence"}

    def test_inline_violation_aborts_run(self):
        import dataclasses

        sim = Simulator(
            dataclasses.replace(micro_trace_config(),
                                validate_every_n_batches=1)
        )
        # Sabotage the live state: an impossible engine clock.
        sim.engine.now = sim.config.duration + 1000.0
        with pytest.raises(ValidationError):
            sim._run_inline_validation()


class TestCli:
    def test_list(self, capsys):
        assert main(["validate", "--list"]) == 0
        out = capsys.readouterr().out
        assert "events.sane" in out
        assert "tomography.link_consistency" in out

    def test_fresh_trace_exits_zero(self, recorded_trace, capsys):
        assert main(["validate", str(recorded_trace)]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_checker_subset(self, recorded_trace, capsys):
        code = main(["validate", str(recorded_trace),
                     "--checkers", "events.sane,trace.manifest"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 checker(s) run" in out

    def test_unknown_checker_is_usage_error(self, recorded_trace):
        assert main(["validate", str(recorded_trace),
                     "--checkers", "bogus.checker"]) == 2

    def test_bad_target_is_usage_error(self, tmp_path):
        assert main(["validate", str(tmp_path / "nope")]) == 2

    def test_manifest_out(self, recorded_trace, tmp_path):
        from repro.telemetry import RunManifest

        out = tmp_path / "validate-manifest.json"
        assert main(["validate", str(recorded_trace),
                     "--manifest-out", str(out)]) == 0
        manifest = RunManifest.load(out)
        assert manifest.command == "validate"
        assert manifest.extra["violations"] == 0
        assert manifest.metrics["validate.checkers_run"]["value"] >= 13

    def test_corrupt_trace_exits_one(self, recorded_trace, tmp_path, capsys):
        import shutil

        broken = tmp_path / "broken.reprotrace"
        shutil.copytree(recorded_trace, broken)
        chunk = sorted(broken.glob("events-*.npz"))[0]
        data = bytearray(chunk.read_bytes())
        data[len(data) // 2] ^= 0xFF
        chunk.write_bytes(bytes(data))
        assert main(["validate", str(broken)]) == 1
        out = capsys.readouterr().out
        assert "trace.chunk_hashes" in out
