"""ASCII rendering of figures."""

import numpy as np
import pytest

from repro.util.ascii import render_bars, render_cdf, render_heatmap, render_series
from repro.util.stats import ecdf


class TestHeatmap:
    def test_renders_box(self):
        text = render_heatmap(np.arange(16).reshape(4, 4), title="test")
        lines = text.splitlines()
        assert lines[0] == "test"
        assert lines[1].startswith("+")
        assert lines[-1].startswith("+")
        assert all(line.startswith("|") for line in lines[2:-1])

    def test_downsamples_large_matrix(self):
        text = render_heatmap(np.random.default_rng(0).random((200, 300)),
                              max_width=40, max_height=20)
        longest = max(len(line) for line in text.splitlines())
        assert longest <= 42

    def test_nan_cells_blank(self):
        matrix = np.full((3, 3), np.nan)
        matrix[0, 0] = 1.0
        text = render_heatmap(matrix)
        assert " " in text

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.arange(5))


class TestCdfPlot:
    def test_single_curve(self):
        text = render_cdf({"x": ecdf([1.0, 2.0, 3.0])})
        assert "o=x" in text

    def test_log_axis(self):
        text = render_cdf({"x": ecdf([0.01, 1.0, 100.0])}, log_x=True)
        assert "log10(x)" in text

    def test_empty_curves(self):
        assert "(no data)" in render_cdf({"x": ecdf([])})

    def test_multiple_markers(self):
        text = render_cdf({"a": ecdf([1.0]), "b": ecdf([2.0])})
        assert "o=a" in text and "x=b" in text


class TestBarsAndSeries:
    def test_bars(self):
        text = render_bars(["day 0", "day 1"], [100.0, -50.0])
        assert "day 0" in text
        assert "#" in text and "-" in text

    def test_bars_length_mismatch(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_empty_bars(self):
        assert "(no data)" in render_bars([], [], title="t")

    def test_series(self):
        text = render_series(np.sin(np.linspace(0, 6, 50)), title="wave")
        assert text.startswith("wave")
        assert "*" in text

    def test_series_downsampled(self):
        text = render_series(np.arange(1000), width=50)
        longest = max(len(line) for line in text.splitlines())
        assert longest < 70


class TestFigureAdapters:
    def test_figure_renderings_from_campaign(self, dataset):
        """Every figure adapter produces non-trivial text on real data."""
        from repro.experiments import fig02, fig06, fig07, fig08, fig09, fig10, fig11
        from repro.viz import (
            figure6_episode_cdf,
            figure7_victim_cdf,
            figure8_bars,
            figure9_duration_cdfs,
            figure10_series,
            figure11_interarrival_cdfs,
        )

        assert "Fig 2" in fig02.run(dataset).render()
        assert "Fig 6" in figure6_episode_cdf(fig06.run(dataset).summary)
        assert "Fig 7" in figure7_victim_cdf(fig07.run(dataset).comparison)
        assert "Fig 8" in figure8_bars(fig08.run(dataset).study)
        assert "Fig 9" in figure9_duration_cdfs(fig09.run(dataset).stats)
        assert "Fig 10" in figure10_series(fig10.run(dataset).stats)
        assert "Fig 11" in figure11_interarrival_cdfs(fig11.run(dataset).stats)
