"""Bitwise equivalence of the water-filling allocators.

The vectorized allocator's entire claim is that it replays the reference
loop's floating-point operations exactly — not approximately.  Every
assertion here is ``array_equal`` (bitwise), never ``allclose``: a
single ULP of drift would compound over thousands of rate recomputations
into different completion times and therefore a different event log.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.routing import Router
from repro.cluster.topology import ClusterSpec, ClusterTopology
from repro.simulation import waterfill
from repro.simulation.transport import FluidTransport, TransferMeta
from repro.simulation.waterfill import (
    FlowIncidence,
    _maxmin_csr,
    _maxmin_heap,
    bottleneck_rates,
    maxmin_rates_reference,
    maxmin_rates_vectorized,
)

_META = TransferMeta(kind="fetch")


def _random_problem(rng, num_flows, spec=None):
    """A random active set over a random small topology."""
    spec = spec or ClusterSpec(
        racks=int(rng.integers(2, 8)),
        servers_per_rack=int(rng.integers(2, 8)),
        racks_per_vlan=int(rng.integers(1, 4)),
        external_hosts=int(rng.integers(0, 4)),
    )
    topo = ClusterTopology(spec)
    router = Router(topo)
    endpoints = topo.endpoints()
    paths = np.full((num_flows, 8), -1, dtype=np.int64)
    for i in range(num_flows):
        src, dst = rng.choice(endpoints, size=2, replace=False)
        links = router.path_links(int(src), int(dst))
        paths[i, : len(links)] = links
    return paths, paths >= 0, topo.capacities, topo.num_links


class TestAllocatorEquivalence:
    def test_randomized_bitwise_equal(self):
        rng = np.random.default_rng(20260806)
        for trial in range(25):
            num_flows = int(rng.integers(1, 400))
            paths, valid, caps, num_links = _random_problem(rng, num_flows)
            expected = maxmin_rates_reference(paths, valid, caps, num_links)
            got = maxmin_rates_vectorized(paths, valid, caps, num_links)
            assert np.array_equal(expected, got), f"trial {trial} diverged"

    def test_both_internal_paths_bitwise_equal(self):
        """Heap and CSR regimes agree with the reference (and so with
        each other) on the same problems, regardless of the dispatch
        threshold."""
        rng = np.random.default_rng(7)
        for _ in range(10):
            num_flows = int(rng.integers(2, 300))
            paths, valid, caps, num_links = _random_problem(rng, num_flows)
            incidence = FlowIncidence(paths, valid, caps, num_links)
            expected = maxmin_rates_reference(paths, valid, caps, num_links)
            heap = _maxmin_heap(paths, valid, caps, num_links, incidence)
            csr = _maxmin_csr(paths, valid, caps, num_links, incidence)
            assert np.array_equal(expected, heap)
            assert np.array_equal(expected, csr)

    def test_csr_dispatch_threshold(self, monkeypatch):
        """Dispatch switches on the threshold, invisibly to callers."""
        rng = np.random.default_rng(3)
        paths, valid, caps, num_links = _random_problem(rng, 64)
        expected = maxmin_rates_reference(paths, valid, caps, num_links)
        monkeypatch.setattr(waterfill, "_CSR_FLOW_THRESHOLD", 1)
        assert np.array_equal(
            expected, maxmin_rates_vectorized(paths, valid, caps, num_links)
        )
        monkeypatch.setattr(waterfill, "_CSR_FLOW_THRESHOLD", 10**9)
        assert np.array_equal(
            expected, maxmin_rates_vectorized(paths, valid, caps, num_links)
        )

    def test_empty_active_set(self):
        caps = np.array([1.0, 2.0])
        empty = np.zeros((0, 8), dtype=np.int64)
        assert maxmin_rates_vectorized(empty, empty >= 0, caps, 2).shape == (0,)

    def test_single_flow_gets_bottleneck_capacity(self):
        caps = np.array([100.0, 40.0, 70.0])
        paths = np.array([[0, 1, 2, -1, -1, -1, -1, -1]], dtype=np.int64)
        rates = maxmin_rates_vectorized(paths, paths >= 0, caps, 3)
        assert np.array_equal(rates, np.array([40.0]))

    def test_incidence_reuse_is_pure(self):
        """Repeated allocation through one cached incidence instance
        returns identical results — the per-call state must be copied,
        never mutated in place."""
        rng = np.random.default_rng(11)
        paths, valid, caps, num_links = _random_problem(rng, 120)
        incidence = FlowIncidence(paths, valid, caps, num_links)
        first = maxmin_rates_vectorized(
            paths, valid, caps, num_links, incidence=incidence
        )
        second = maxmin_rates_vectorized(
            paths, valid, caps, num_links, incidence=incidence
        )
        assert np.array_equal(first, second)


class TestTransportIntegration:
    def _transport(self, impl, num_flows=60, seed=2):
        topo = ClusterTopology(
            ClusterSpec(racks=4, servers_per_rack=4, racks_per_vlan=2,
                        external_hosts=1)
        )
        router = Router(topo)
        transport = FluidTransport(topo, impl=impl)
        rng = np.random.default_rng(seed)
        endpoints = topo.endpoints()
        for _ in range(num_flows):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            transport.add_flow(int(src), int(dst), 1e8,
                               router.path_links(int(src), int(dst)), _META)
        return transport

    def test_invalid_impl_rejected(self):
        topo = ClusterTopology(ClusterSpec(racks=2, servers_per_rack=2))
        with pytest.raises(ValueError, match="transport impl"):
            FluidTransport(topo, impl="turbo")

    def test_impls_allocate_identical_rates(self):
        vec = self._transport("vectorized")
        ref = self._transport("reference")
        vec.recompute_rates()
        ref.recompute_rates()
        assert np.array_equal(vec.active_rates(), ref.active_rates())

    def test_cache_invalidated_on_add_and_finish(self):
        transport = self._transport("vectorized", num_flows=10)
        transport.recompute_rates()
        version = transport._flows_version
        topo = transport.topology
        router = Router(topo)
        endpoints = topo.endpoints()
        rng = np.random.default_rng(9)
        src, dst = rng.choice(endpoints, size=2, replace=False)
        transport.add_flow(int(src), int(dst), 1e6,
                           router.path_links(int(src), int(dst)), _META)
        assert transport._flows_version > version
        transport.recompute_rates()
        # Rates after the add must match a fresh transport built with the
        # same final flow set computed by the reference allocator.
        active_idx, paths, valid = transport._active_view()
        expected = maxmin_rates_reference(
            paths, valid, transport.capacities, transport.num_links
        )
        assert np.array_equal(
            transport._rates[active_idx], np.maximum(expected, 1.0)
        )
        # Completing flows must also invalidate: run until one drains.
        version = transport._flows_version
        horizon = transport.next_completion_time()
        assert horizon is not None
        transport.advance_to(horizon + 1e-6)
        assert transport.pop_completed()
        assert transport._flows_version > version

    def test_bottleneck_mode_unchanged(self):
        topo = ClusterTopology(
            ClusterSpec(racks=3, servers_per_rack=3, racks_per_vlan=1)
        )
        transport = FluidTransport(topo, fairness="bottleneck")
        router = Router(topo)
        endpoints = topo.endpoints()
        rng = np.random.default_rng(4)
        for _ in range(20):
            src, dst = rng.choice(endpoints, size=2, replace=False)
            transport.add_flow(int(src), int(dst), 1e7,
                               router.path_links(int(src), int(dst)), _META)
        transport.recompute_rates()
        active_idx, paths, valid = transport._active_view()
        expected = bottleneck_rates(
            paths, valid, transport.capacities, transport.num_links
        )
        assert np.array_equal(
            transport._rates[active_idx], np.maximum(expected, 1.0)
        )
